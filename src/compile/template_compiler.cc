#include "compile/template_compiler.h"

#include <map>

#include "plan/validate.h"
#include "stage/prelude.h"
#include "util/check.h"
#include "util/str.h"
#include "util/time.h"

namespace lb2::compile {

using plan::AggKind;
using plan::ExprOp;
using plan::ExprRef;
using plan::OpType;
using plan::PlanRef;
using schema::FieldKind;
using schema::Schema;

namespace {

// The generic-runtime prelude appended to the shared C prelude: untyped
// slot rows and a chained hash table with per-row heap allocation — exactly
// the "generic library" data structures the paper's template-expansion
// strawman relies on.
constexpr const char* kTemplatePrelude = R"TPL(
typedef union { int64_t i; double d; const char* p; } lb2t_val;

typedef struct lb2t_node {
  struct lb2t_node* next;
  int64_t hash;
  lb2t_val* row;
} lb2t_node;

typedef struct {
  lb2t_node** b;
  int64_t n;
} lb2t_ht;

static lb2t_ht* lb2t_ht_new(int64_t n) {
  lb2t_ht* h = (lb2t_ht*)malloc(sizeof(lb2t_ht));
  h->n = n;
  h->b = (lb2t_node**)calloc((size_t)n, sizeof(lb2t_node*));
  return h;
}

static lb2t_val* lb2t_row_copy(const lb2t_val* r, int w) {
  lb2t_val* c = (lb2t_val*)malloc(sizeof(lb2t_val) * (size_t)w);
  memcpy(c, r, sizeof(lb2t_val) * (size_t)w);
  return c;
}

static void lb2t_ht_insert(lb2t_ht* h, int64_t hash, lb2t_val* row) {
  lb2t_node* nd = (lb2t_node*)malloc(sizeof(lb2t_node));
  int64_t slot = (int64_t)((uint64_t)hash % (uint64_t)h->n);
  nd->next = h->b[slot];
  nd->hash = hash;
  nd->row = row;
  h->b[slot] = nd;
}

typedef struct {
  lb2t_val** rows;
  int64_t n, cap;
} lb2t_vec;

static void lb2t_vec_push(lb2t_vec* v, lb2t_val* row) {
  if (v->n == v->cap) {
    v->cap = v->cap ? v->cap * 2 : 1024;
    v->rows = (lb2t_val**)realloc(v->rows, sizeof(lb2t_val*) * (size_t)v->cap);
  }
  v->rows[v->n++] = row;
}

static void lb2t_ht_free(lb2t_ht* h) {
  for (int64_t i = 0; i < h->n; i++) {
    lb2t_node* nd = h->b[i];
    while (nd) {
      lb2t_node* nx = nd->next;
      free(nd->row);
      free(nd);
      nd = nx;
    }
  }
  free(h->b);
  free(h);
}

static void lb2t_vec_free(lb2t_vec* v) {
  for (int64_t i = 0; i < v->n; i++) free(v->rows[i]);
  free(v->rows);
  v->rows = 0; v->n = 0; v->cap = 0;
}
)TPL";

/// Slot layout of a schema: strings take two slots (ptr, len).
struct SlotMap {
  std::vector<int> slot;  // field index -> first slot
  int width = 0;

  explicit SlotMap(const Schema& s) {
    for (int i = 0; i < s.size(); ++i) {
      slot.push_back(width);
      width += s.field(i).kind == FieldKind::kString ? 2 : 1;
    }
  }
};

/// A generated value: numeric C expression, or a string (ptr, len) pair.
struct TVal {
  FieldKind kind;
  std::string num;  // valid unless kind == kString
  std::string ptr, len;
};

class TemplateGen {
 public:
  TemplateGen(const plan::Query& q, const rt::Database& db)
      : query_(q), db_(&db) {}

  std::string Generate(rt::EnvLayout* env) {
    env_ = env;
    std::string body;
    for (size_t i = 0; i < query_.scalar_subqueries.size(); ++i) {
      const PlanRef& sub = query_.scalar_subqueries[i];
      decls_ += "  double sc" + std::to_string(i) + " = 0;\n";
      Schema s = plan::OutputSchema(sub, *db_);
      SlotMap m(s);
      body += GenOp(sub, [&](const std::string& row) {
        return "  sc" + std::to_string(i) + " = (double)" +
               (s.field(0).kind == FieldKind::kDouble
                    ? row + "[0].d"
                    : row + "[0].i") +
               ";\n";
      });
    }
    Schema out_schema = plan::OutputSchema(query_.root, *db_);
    body += "  double lb2_tstart = lb2_now_ms();\n";
    body += GenOp(query_.root, [&](const std::string& row) {
      SlotMap m(out_schema);
      std::string c;
      for (int i = 0; i < out_schema.size(); ++i) {
        if (i > 0) c += "  lb2_out_char(out, '|');\n";
        std::string base = row + "[" + std::to_string(m.slot[static_cast<size_t>(i)]) + "]";
        switch (out_schema.field(i).kind) {
          case FieldKind::kInt64:
            c += "  lb2_out_i64(out, " + base + ".i);\n";
            break;
          case FieldKind::kDouble:
            c += "  lb2_out_f64(out, " + base + ".d);\n";
            break;
          case FieldKind::kDate:
            c += "  lb2_out_date(out, " + base + ".i);\n";
            break;
          case FieldKind::kString:
            c += "  lb2_out_str(out, " + base + ".p, (int32_t)" + row + "[" +
                 std::to_string(m.slot[static_cast<size_t>(i)] + 1) +
                 "].i);\n";
            break;
        }
      }
      c += "  lb2_out_char(out, '\\n');\n  out->rows++;\n";
      return c;
    });
    body += "  out->exec_ms = lb2_now_ms() - lb2_tstart;\n";

    std::string src;
    src += stage::kCPrelude;
    src += kTemplatePrelude;
    src += functions_;
    // Same reentrant entry ABI as the staged compiler (jit.h): all state is
    // either per-call locals or reached through the execution context. The
    // template path needs no scratch fields beyond the fixed header. The
    // morsels pointer is part of that header (the host Run() always fills
    // it); template code never reads it and runs its static loops.
    src += "typedef struct {\n  void** env;\n  lb2_out* out;\n"
           "  const lb2_param* params;\n  lb2_morsel_source* morsels;\n"
           "} lb2_exec_ctx;\n";
    src += "const int64_t lb2_ctx_bytes = (int64_t)sizeof(lb2_exec_ctx);\n";
    // The template path never hoists literals, but it shares the host-side
    // Run() ABI with the staged compiler, so it declares zero slots.
    src += "const int64_t lb2_param_count = 0;\n";
    src += "int64_t lb2_query(lb2_exec_ctx* lb2_ctx) {\n";
    src += "  void** env = lb2_ctx->env;\n";
    src += "  lb2_out* out = lb2_ctx->out;\n";
    src += "  (void)env;\n";
    src += binds_;
    src += decls_;
    src += body;
    // Free generic structures so repeated Run() calls do not grow the heap
    // (and do not pollute measurements of other engines in-process).
    src += frees_;
    src += "  return out->rows;\n}\n";
    return src;
  }

 private:
  using Consumer = std::function<std::string(const std::string& row_var)>;

  std::string Fresh(const char* p) { return p + std::to_string(counter_++); }

  /// Binds a base-table column pointer once; returns the C variable name.
  std::string BindColumn(const std::string& table, const std::string& col) {
    std::string key = table + "." + col;
    auto it = col_vars_.find(key);
    if (it != col_vars_.end()) return it->second;
    const rt::Column& c = db_->table(table).column(col);
    std::string ctype;
    const void* ptr = nullptr;
    switch (c.kind()) {
      case FieldKind::kInt64: ctype = "const int64_t*"; ptr = c.i64_data(); break;
      case FieldKind::kDouble: ctype = "const double*"; ptr = c.f64_data(); break;
      case FieldKind::kDate: ctype = "const int32_t*"; ptr = c.date_data(); break;
      case FieldKind::kString: {
        // Two bound vars; the second registered under key+":l".
        std::string pv = Fresh("cp");
        std::string lv = Fresh("cl");
        int ps = env_->SlotFor("t:" + key + ":p", [&c](const rt::Database&) {
          return static_cast<const void*>(c.str_ptr_data());
        });
        int ls = env_->SlotFor("t:" + key + ":l", [&c](const rt::Database&) {
          return static_cast<const void*>(c.str_len_data());
        });
        binds_ += "  const char** " + pv + " = (const char**)env[" +
                  std::to_string(ps) + "];\n";
        binds_ += "  const int32_t* " + lv + " = (const int32_t*)env[" +
                  std::to_string(ls) + "];\n";
        col_vars_[key] = pv;
        col_vars_[key + ":l"] = lv;
        return pv;
      }
    }
    std::string v = Fresh("c");
    int slot = env_->SlotFor("t:" + key, [ptr](const rt::Database&) {
      return ptr;
    });
    binds_ += "  " + ctype + " " + v + " = (" + ctype + ")env[" +
              std::to_string(slot) + "];\n";
    col_vars_[key] = v;
    return v;
  }

  // -- Expression templates --------------------------------------------------

  TVal Slot(const std::string& row, const Schema& s, const SlotMap& m,
            const std::string& name) {
    int i = s.IndexOf(name);
    LB2_CHECK_MSG(i >= 0, ("template: unbound column " + name).c_str());
    std::string base =
        row + "[" + std::to_string(m.slot[static_cast<size_t>(i)]) + "]";
    FieldKind k = s.field(i).kind;
    if (k == FieldKind::kString) {
      return {k, "", base + ".p",
              "(int32_t)" + row + "[" +
                  std::to_string(m.slot[static_cast<size_t>(i)] + 1) + "].i"};
    }
    if (k == FieldKind::kDouble) return {k, base + ".d", "", ""};
    return {k, base + ".i", "", ""};
  }

  std::string Num(const TVal& v) {
    LB2_CHECK(v.kind != FieldKind::kString);
    return v.num;
  }
  std::string Dbl(const TVal& v) { return "(double)(" + Num(v) + ")"; }

  TVal GenExpr(const ExprRef& e, const std::string& row, const Schema& s,
               const SlotMap& m) {
    switch (e->op) {
      case ExprOp::kColRef:
        return Slot(row, s, m, e->str);
      case ExprOp::kIntConst:
      case ExprOp::kDateConst:
      case ExprOp::kBoolConst:
        return {e->op == ExprOp::kDateConst ? FieldKind::kDate
                                            : FieldKind::kInt64,
                std::to_string(e->i64) + "LL", "", ""};
      case ExprOp::kDoubleConst:
        return {FieldKind::kDouble, StrPrintf("%.17g", e->f64), "", ""};
      case ExprOp::kStrConst:
        return {FieldKind::kString, "", stage::CStringLit(e->str),
                std::to_string(e->str.size())};
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kDiv: {
        TVal a = GenExpr(e->children[0], row, s, m);
        TVal b = GenExpr(e->children[1], row, s, m);
        const char* op = e->op == ExprOp::kAdd   ? "+"
                         : e->op == ExprOp::kSub ? "-"
                         : e->op == ExprOp::kMul ? "*"
                                                 : "/";
        bool dbl = e->op == ExprOp::kDiv || a.kind == FieldKind::kDouble ||
                   b.kind == FieldKind::kDouble;
        if (dbl) {
          return {FieldKind::kDouble,
                  "(" + Dbl(a) + " " + op + " " + Dbl(b) + ")", "", ""};
        }
        return {FieldKind::kInt64, "(" + Num(a) + " " + op + " " + Num(b) + ")",
                "", ""};
      }
      case ExprOp::kEq:
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kLe:
      case ExprOp::kGt:
      case ExprOp::kGe: {
        TVal a = GenExpr(e->children[0], row, s, m);
        TVal b = GenExpr(e->children[1], row, s, m);
        const char* op = e->op == ExprOp::kEq   ? "=="
                         : e->op == ExprOp::kNe ? "!="
                         : e->op == ExprOp::kLt ? "<"
                         : e->op == ExprOp::kLe ? "<="
                         : e->op == ExprOp::kGt ? ">"
                                                : ">=";
        if (a.kind == FieldKind::kString) {
          std::string cmp = "lb2_str_cmp(" + a.ptr + ", " + a.len + ", " +
                            b.ptr + ", " + b.len + ")";
          return {FieldKind::kInt64, "(" + cmp + " " + op + " 0)", "", ""};
        }
        return {FieldKind::kInt64,
                "(" + Num(a) + " " + op + " " + Num(b) + ")", "", ""};
      }
      case ExprOp::kAnd:
      case ExprOp::kOr: {
        TVal a = GenExpr(e->children[0], row, s, m);
        TVal b = GenExpr(e->children[1], row, s, m);
        const char* op = e->op == ExprOp::kAnd ? "&&" : "||";
        return {FieldKind::kInt64,
                "(" + Num(a) + " " + op + " " + Num(b) + ")", "", ""};
      }
      case ExprOp::kNot: {
        TVal a = GenExpr(e->children[0], row, s, m);
        return {FieldKind::kInt64, "(!" + Num(a) + ")", "", ""};
      }
      case ExprOp::kLike:
      case ExprOp::kStartsWith:
      case ExprOp::kEndsWith:
      case ExprOp::kContains: {
        TVal a = GenExpr(e->children[0], row, s, m);
        const char* fn = e->op == ExprOp::kLike         ? "lb2_like"
                         : e->op == ExprOp::kStartsWith ? "lb2_starts_with"
                         : e->op == ExprOp::kEndsWith   ? "lb2_ends_with"
                                                        : "lb2_contains";
        std::string pat = e->op == ExprOp::kLike ? e->str : e->str;
        return {FieldKind::kInt64,
                std::string(fn) + "(" + a.ptr + ", " + a.len + ", " +
                    stage::CStringLit(pat) + ", " +
                    std::to_string(pat.size()) + ")",
                "", ""};
      }
      case ExprOp::kNotLike:
        LB2_CHECK(false);
        return {};
      case ExprOp::kInStr: {
        TVal a = GenExpr(e->children[0], row, s, m);
        std::string out = "(";
        for (size_t i = 0; i < e->str_list.size(); ++i) {
          if (i) out += " || ";
          out += "lb2_str_eq(" + a.ptr + ", " + a.len + ", " +
                 stage::CStringLit(e->str_list[i]) + ", " +
                 std::to_string(e->str_list[i].size()) + ")";
        }
        return {FieldKind::kInt64, out + ")", "", ""};
      }
      case ExprOp::kInInt: {
        TVal a = GenExpr(e->children[0], row, s, m);
        std::string v = Num(a);
        std::string out = "(";
        for (size_t i = 0; i < e->int_list.size(); ++i) {
          if (i) out += " || ";
          out += "(" + v + " == " + std::to_string(e->int_list[i]) + "LL)";
        }
        return {FieldKind::kInt64, out + ")", "", ""};
      }
      case ExprOp::kCase: {
        TVal c = GenExpr(e->children[0], row, s, m);
        TVal t = GenExpr(e->children[1], row, s, m);
        TVal f = GenExpr(e->children[2], row, s, m);
        bool dbl =
            t.kind == FieldKind::kDouble || f.kind == FieldKind::kDouble;
        if (dbl) {
          return {FieldKind::kDouble,
                  "(" + Num(c) + " ? " + Dbl(t) + " : " + Dbl(f) + ")", "",
                  ""};
        }
        return {FieldKind::kInt64,
                "(" + Num(c) + " ? " + Num(t) + " : " + Num(f) + ")", "", ""};
      }
      case ExprOp::kYear: {
        TVal a = GenExpr(e->children[0], row, s, m);
        return {FieldKind::kInt64, "(" + Num(a) + " / 10000)", "", ""};
      }
      case ExprOp::kSubstring: {
        TVal a = GenExpr(e->children[0], row, s, m);
        // Static offsets clamped against the source length.
        std::string pos = std::to_string(e->i64);
        std::string len = std::to_string(e->i64b);
        return {FieldKind::kString, "",
                "(" + a.ptr + " + (" + a.len + " < " + pos + " ? " + a.len +
                    " : " + pos + "))",
                "((" + a.len + " - " + pos + ") < " + len + " ? (" + a.len +
                    " < " + pos + " ? 0 : " + a.len + " - " + pos + ") : " +
                    len + ")"};
      }
      case ExprOp::kScalarRef:
        return {FieldKind::kDouble, "sc" + std::to_string(e->i64), "", ""};
    }
    LB2_CHECK(false);
    return {};
  }

  /// Statements storing `v` into row slots of field `i`.
  std::string StoreSlot(const std::string& row, const SlotMap& m, int i,
                        FieldKind k, const TVal& v) {
    std::string base =
        row + "[" + std::to_string(m.slot[static_cast<size_t>(i)]) + "]";
    if (k == FieldKind::kString) {
      return "  " + base + ".p = " + v.ptr + ";\n  " + row + "[" +
             std::to_string(m.slot[static_cast<size_t>(i)] + 1) +
             "].i = (int64_t)(" + v.len + ");\n";
    }
    if (k == FieldKind::kDouble) {
      std::string num = v.kind == FieldKind::kDouble
                            ? v.num
                            : "(double)(" + v.num + ")";
      return "  " + base + ".d = " + num + ";\n";
    }
    std::string num = v.kind == FieldKind::kDouble
                          ? "(int64_t)(" + v.num + ")"
                          : v.num;
    return "  " + base + ".i = " + num + ";\n";
  }

  /// Hash expression over the named key fields of `row`.
  std::string HashKeys(const std::string& row, const Schema& s,
                       const SlotMap& m, const std::vector<std::string>& keys) {
    std::string h;
    for (const auto& k : keys) {
      TVal v = Slot(row, s, m, k);
      std::string piece =
          v.kind == FieldKind::kString
              ? "lb2_hash_str(" + v.ptr + ", " + v.len + ")"
              : "lb2_hash_i64(" +
                    (v.kind == FieldKind::kDouble ? "(int64_t)" + v.num
                                                  : v.num) +
                    ")";
      h = h.empty() ? piece : "lb2_hash_combine(" + h + ", " + piece + ")";
    }
    return h;
  }

  /// Equality expression between stored row `a` and probe row `b`.
  std::string KeysEqual(const std::string& a, const Schema& as,
                        const SlotMap& am, const std::vector<std::string>& ak,
                        const std::string& b, const Schema& bs,
                        const SlotMap& bm,
                        const std::vector<std::string>& bk) {
    std::string out;
    for (size_t i = 0; i < ak.size(); ++i) {
      TVal x = Slot(a, as, am, ak[i]);
      TVal y = Slot(b, bs, bm, bk[i]);
      std::string piece;
      if (x.kind == FieldKind::kString) {
        piece = "lb2_str_eq(" + x.ptr + ", " + x.len + ", " + y.ptr + ", " +
                y.len + ")";
      } else if (x.kind == FieldKind::kDouble ||
                 y.kind == FieldKind::kDouble) {
        piece = "(" + Dbl(x) + " == " + Dbl(y) + ")";
      } else {
        piece = "(" + Num(x) + " == " + Num(y) + ")";
      }
      out = out.empty() ? piece : out + " && " + piece;
    }
    return out;
  }

  /// Copies all fields of `src` (schema ss) into a fresh stack row.
  std::string MaterializeConcat(const std::string& dst, const Schema& ds,
                                const SlotMap& dm, const std::string& a,
                                int a_width, const std::string& b,
                                int b_width) {
    std::string c = "  lb2t_val " + dst + "[" + std::to_string(dm.width) +
                    "];\n";
    c += "  memcpy(" + dst + ", " + a + ", sizeof(lb2t_val) * " +
         std::to_string(a_width) + ");\n";
    c += "  memcpy(" + dst + " + " + std::to_string(a_width) + ", " + b +
         ", sizeof(lb2t_val) * " + std::to_string(b_width) + ");\n";
    return c;
  }

  // -- Operator templates ------------------------------------------------------

  std::string GenOp(const PlanRef& p, const Consumer& consume) {
    Schema out = plan::OutputSchema(p, *db_);
    SlotMap m(out);
    switch (p->type) {
      case OpType::kScan: {
        const rt::Table& t = db_->table(p->table);
        std::string i = Fresh("i");
        std::string row = Fresh("r");
        std::string c = "  for (int64_t " + i + " = 0; " + i + " < " +
                        std::to_string(t.num_rows()) + "LL; " + i + "++) {\n";
        c += "  lb2t_val " + row + "[" + std::to_string(m.width) + "];\n";
        for (int f = 0; f < out.size(); ++f) {
          const auto& fld = out.field(f);
          std::string v = BindColumn(p->table, fld.name);
          std::string base =
              row + "[" + std::to_string(m.slot[static_cast<size_t>(f)]) + "]";
          switch (fld.kind) {
            case FieldKind::kInt64:
              c += "  " + base + ".i = " + v + "[" + i + "];\n";
              break;
            case FieldKind::kDouble:
              c += "  " + base + ".d = " + v + "[" + i + "];\n";
              break;
            case FieldKind::kDate:
              c += "  " + base + ".i = (int64_t)" + v + "[" + i + "];\n";
              break;
            case FieldKind::kString: {
              std::string lv = col_vars_[p->table + "." + fld.name + ":l"];
              c += "  " + base + ".p = " + v + "[" + i + "];\n";
              c += "  " + row + "[" +
                   std::to_string(m.slot[static_cast<size_t>(f)] + 1) +
                   "].i = (int64_t)" + lv + "[" + i + "];\n";
              break;
            }
          }
        }
        c += consume(row);
        c += "  }\n";
        return c;
      }
      case OpType::kSelect: {
        Schema cs = plan::OutputSchema(p->children[0], *db_);
        SlotMap cm(cs);
        return GenOp(p->children[0], [&](const std::string& row) {
          TVal pred = GenExpr(p->predicate, row, cs, cm);
          return "  if (" + Num(pred) + ") {\n" + consume(row) + "  }\n";
        });
      }
      case OpType::kProject: {
        Schema cs = plan::OutputSchema(p->children[0], *db_);
        SlotMap cm(cs);
        return GenOp(p->children[0], [&](const std::string& row) {
          std::string nr = Fresh("r");
          std::string c = "  lb2t_val " + nr + "[" +
                          std::to_string(m.width) + "];\n";
          for (size_t i = 0; i < p->exprs.size(); ++i) {
            TVal v = GenExpr(p->exprs[i], row, cs, cm);
            c += StoreSlot(nr, m, static_cast<int>(i),
                           out.field(static_cast<int>(i)).kind, v);
          }
          c += consume(nr);
          return c;
        });
      }
      case OpType::kLimit: {
        std::string cnt = Fresh("lim");
        decls_ += "  int64_t " + cnt + " = 0;\n";
        return GenOp(p->children[0], [&](const std::string& row) {
          return "  if (" + cnt + " < " + std::to_string(p->limit) +
                 "LL) {\n" + consume(row) + "  " + cnt + "++;\n  }\n";
        });
      }
      case OpType::kHashJoin:
        return GenHashJoin(p, out, m, consume);
      case OpType::kSemiJoin:
      case OpType::kAntiJoin:
        return GenSemiAnti(p, consume);
      case OpType::kLeftCountJoin:
        return GenLeftCount(p, out, m, consume);
      case OpType::kGroupAgg:
        return GenGroupAgg(p, out, m, consume);
      case OpType::kScalarAgg:
        return GenScalarAgg(p, out, m, consume);
      case OpType::kSort:
        return GenSort(p, out, m, consume);
    }
    LB2_CHECK(false);
    return "";
  }

  std::string GenHashJoin(const PlanRef& p, const Schema& out,
                          const SlotMap& m, const Consumer& consume) {
    Schema ls = plan::OutputSchema(p->children[0], *db_);
    Schema rs = plan::OutputSchema(p->children[1], *db_);
    SlotMap lm(ls), rm(rs);
    std::string ht = Fresh("ht");
    decls_ += "  lb2t_ht* " + ht + " = lb2t_ht_new(65536);\n";
    frees_ += "  lb2t_ht_free(" + ht + ");\n";
    std::string c = GenOp(p->children[0], [&](const std::string& row) {
      return "  lb2t_ht_insert(" + ht + ", " +
             HashKeys(row, ls, lm, p->left_keys) + ", lb2t_row_copy(" + row +
             ", " + std::to_string(lm.width) + "));\n";
    });
    c += GenOp(p->children[1], [&](const std::string& row) {
      std::string h = Fresh("h");
      std::string nd = Fresh("nd");
      std::string lrow = Fresh("lr");
      std::string jr = Fresh("jr");
      std::string body = "  int64_t " + h + " = " +
                         HashKeys(row, rs, rm, p->right_keys) + ";\n";
      body += "  for (lb2t_node* " + nd + " = " + ht + "->b[(uint64_t)" + h +
              " % (uint64_t)" + ht + "->n]; " + nd + "; " + nd + " = " + nd +
              "->next) {\n";
      body += "  lb2t_val* " + lrow + " = " + nd + "->row;\n";
      body += "  if (" +
              KeysEqual(lrow, ls, lm, p->left_keys, row, rs, rm,
                        p->right_keys) +
              ") {\n";
      body += MaterializeConcat(jr, out, m, lrow, lm.width, row, rm.width);
      if (p->predicate != nullptr) {
        TVal pred = GenExpr(p->predicate, jr, out, m);
        body += "  if (" + Num(pred) + ") {\n" + consume(jr) + "  }\n";
      } else {
        body += consume(jr);
      }
      body += "  }\n  }\n";
      return body;
    });
    return c;
  }

  std::string GenSemiAnti(const PlanRef& p, const Consumer& consume) {
    bool anti = p->type == OpType::kAntiJoin;
    Schema ls = plan::OutputSchema(p->children[0], *db_);
    Schema rs = plan::OutputSchema(p->children[1], *db_);
    SlotMap lm(ls), rm(rs);
    // The joint schema is only well-formed (and only needed) when a
    // correlated residual predicate exists.
    Schema joint = p->predicate != nullptr ? ls.Concat(rs) : ls;
    SlotMap jm(joint);
    std::string ht = Fresh("ht");
    decls_ += "  lb2t_ht* " + ht + " = lb2t_ht_new(65536);\n";
    frees_ += "  lb2t_ht_free(" + ht + ");\n";
    std::string c = GenOp(p->children[1], [&](const std::string& row) {
      return "  lb2t_ht_insert(" + ht + ", " +
             HashKeys(row, rs, rm, p->right_keys) + ", lb2t_row_copy(" + row +
             ", " + std::to_string(rm.width) + "));\n";
    });
    c += GenOp(p->children[0], [&](const std::string& row) {
      std::string h = Fresh("h");
      std::string nd = Fresh("nd");
      std::string found = Fresh("fnd");
      std::string body = "  int64_t " + h + " = " +
                         HashKeys(row, ls, lm, p->left_keys) + ";\n";
      body += "  bool " + found + " = false;\n";
      body += "  for (lb2t_node* " + nd + " = " + ht + "->b[(uint64_t)" + h +
              " % (uint64_t)" + ht + "->n]; " + nd + "; " + nd + " = " + nd +
              "->next) {\n";
      body += "  lb2t_val* rr = " + nd + "->row;\n";
      body += "  if (" +
              KeysEqual("rr", rs, rm, p->right_keys, row, ls, lm,
                        p->left_keys) +
              ") {\n";
      if (p->predicate != nullptr) {
        std::string jr = Fresh("jr");
        body += MaterializeConcat(jr, joint, jm, row, lm.width, "rr",
                                  rm.width);
        TVal pred = GenExpr(p->predicate, jr, joint, jm);
        body += "  if (" + Num(pred) + ") { " + found +
                " = true; break; }\n";
      } else {
        body += "  " + found + " = true; break;\n";
      }
      body += "  }\n  }\n";
      body += "  if (" + std::string(anti ? "!" : "") + found + ") {\n" +
              consume(row) + "  }\n";
      return body;
    });
    return c;
  }

  std::string GenLeftCount(const PlanRef& p, const Schema& out,
                           const SlotMap& m, const Consumer& consume) {
    Schema ls = plan::OutputSchema(p->children[0], *db_);
    Schema rs = plan::OutputSchema(p->children[1], *db_);
    SlotMap lm(ls), rm(rs);
    // Stored rows: right key slots ++ one count slot; key schema mirrors the
    // right key fields.
    Schema key_schema;
    for (const auto& k : p->right_keys) key_schema.Add(rs.Get(k));
    SlotMap km(key_schema);
    std::string ht = Fresh("ht");
    decls_ += "  lb2t_ht* " + ht + " = lb2t_ht_new(65536);\n";
    frees_ += "  lb2t_ht_free(" + ht + ");\n";
    std::string c = GenOp(p->children[1], [&](const std::string& row) {
      std::string h = Fresh("h");
      std::string nd = Fresh("nd");
      std::string kr = Fresh("kr");
      std::string body = "  int64_t " + h + " = " +
                         HashKeys(row, rs, rm, p->right_keys) + ";\n";
      body += "  lb2t_node* " + nd + " = " + ht + "->b[(uint64_t)" + h +
              " % (uint64_t)" + ht + "->n];\n";
      body += "  for (; " + nd + "; " + nd + " = " + nd + "->next) {\n";
      std::vector<std::string> key_names;
      for (int i = 0; i < key_schema.size(); ++i) {
        key_names.push_back(key_schema.field(i).name);
      }
      body += "  if (" +
              KeysEqual(nd + std::string("->row"), key_schema, km, key_names,
                        row, rs, rm, p->right_keys) +
              ") break;\n  }\n";
      body += "  if (" + nd + ") { " + nd + "->row[" +
              std::to_string(km.width) + "].i++; } else {\n";
      body += "  lb2t_val " + kr + "[" + std::to_string(km.width + 1) +
              "];\n";
      for (size_t i = 0; i < p->right_keys.size(); ++i) {
        TVal v = Slot(row, rs, rm, p->right_keys[i]);
        body += StoreSlot(kr, km, static_cast<int>(i),
                          key_schema.field(static_cast<int>(i)).kind, v);
      }
      body += "  " + kr + "[" + std::to_string(km.width) + "].i = 1;\n";
      body += "  lb2t_ht_insert(" + ht + ", " + h + ", lb2t_row_copy(" + kr +
              ", " + std::to_string(km.width + 1) + "));\n  }\n";
      return body;
    });
    c += GenOp(p->children[0], [&](const std::string& row) {
      std::string h = Fresh("h");
      std::string nd = Fresh("nd");
      std::string cnt = Fresh("cn");
      std::string nr = Fresh("r");
      std::string body = "  int64_t " + h + " = " +
                         HashKeys(row, ls, lm, p->left_keys) + ";\n";
      body += "  int64_t " + cnt + " = 0;\n";
      body += "  for (lb2t_node* " + nd + " = " + ht + "->b[(uint64_t)" + h +
              " % (uint64_t)" + ht + "->n]; " + nd + "; " + nd + " = " + nd +
              "->next) {\n";
      std::vector<std::string> key_names;
      for (int i = 0; i < key_schema.size(); ++i) {
        key_names.push_back(key_schema.field(i).name);
      }
      body += "  if (" +
              KeysEqual(nd + std::string("->row"), key_schema, km, key_names,
                        row, ls, lm, p->left_keys) +
              ") { " + cnt + " = " + nd + "->row[" +
              std::to_string(km.width) + "].i; break; }\n  }\n";
      body += "  lb2t_val " + nr + "[" + std::to_string(m.width) + "];\n";
      body += "  memcpy(" + nr + ", " + row + ", sizeof(lb2t_val) * " +
              std::to_string(lm.width) + ");\n";
      body += "  " + nr + "[" + std::to_string(lm.width) + "].i = " + cnt +
              ";\n";
      body += consume(nr);
      return body;
    });
    return c;
  }

  std::string GenGroupAgg(const PlanRef& p, const Schema& out,
                          const SlotMap& m, const Consumer& consume) {
    Schema cs = plan::OutputSchema(p->children[0], *db_);
    SlotMap cm(cs);
    int ng = static_cast<int>(p->group_exprs.size());
    // Stored rows use the output layout: group slots then agg slots.
    std::string ht = Fresh("ht");
    decls_ += "  lb2t_ht* " + ht + " = lb2t_ht_new(65536);\n";
    frees_ += "  lb2t_ht_free(" + ht + ");\n";
    std::vector<std::string> group_names;
    for (int i = 0; i < ng; ++i) group_names.push_back(out.field(i).name);

    std::string c = GenOp(p->children[0], [&](const std::string& row) {
      std::string kr = Fresh("kr");
      std::string h = Fresh("h");
      std::string nd = Fresh("nd");
      // Materialize the key (and a fresh row in output layout).
      std::string body = "  lb2t_val " + kr + "[" + std::to_string(m.width) +
                         "];\n";
      for (int i = 0; i < ng; ++i) {
        TVal v = GenExpr(p->group_exprs[static_cast<size_t>(i)], row, cs, cm);
        body += StoreSlot(kr, m, i, out.field(i).kind, v);
      }
      body += "  int64_t " + h + " = " + HashKeys(kr, out, m, group_names) +
              ";\n";
      body += "  lb2t_node* " + nd + " = " + ht + "->b[(uint64_t)" + h +
              " % (uint64_t)" + ht + "->n];\n";
      body += "  for (; " + nd + "; " + nd + " = " + nd + "->next) {\n";
      body += "  if (" +
              KeysEqual(nd + std::string("->row"), out, m, group_names, kr,
                        out, m, group_names) +
              ") break;\n  }\n";
      // Update in place or insert with initial values.
      body += "  if (" + nd + ") {\n";
      body += AggUpdates(p, out, m, cs, cm, nd + std::string("->row"), row,
                         /*init=*/false);
      body += "  } else {\n";
      body += AggUpdates(p, out, m, cs, cm, kr, row, /*init=*/true);
      body += "  lb2t_ht_insert(" + ht + ", " + h + ", lb2t_row_copy(" + kr +
              ", " + std::to_string(m.width) + "));\n  }\n";
      return body;
    });
    // Emit all groups.
    std::string bidx = Fresh("b");
    std::string nd = Fresh("nd");
    c += "  for (int64_t " + bidx + " = 0; " + bidx + " < " + ht + "->n; " +
         bidx + "++) {\n";
    c += "  for (lb2t_node* " + nd + " = " + ht + "->b[" + bidx + "]; " + nd +
         "; " + nd + " = " + nd + "->next) {\n";
    std::string row = Fresh("r");
    c += "  lb2t_val* " + row + " = " + nd + "->row;\n";
    c += consume(row);
    c += "  }\n  }\n";
    return c;
  }

  /// Agg slot updates for a stored row; when `init` the slots are assigned
  /// their first value.
  std::string AggUpdates(const PlanRef& p, const Schema& out,
                         const SlotMap& m, const Schema& cs,
                         const SlotMap& cm, const std::string& acc_row,
                         const std::string& in_row, bool init) {
    int ng = static_cast<int>(p->group_exprs.size());
    std::string body;
    for (size_t a = 0; a < p->aggs.size(); ++a) {
      const auto& spec = p->aggs[a];
      int fi = ng + static_cast<int>(a);
      FieldKind k = out.field(fi).kind;
      std::string base = acc_row + "[" +
                         std::to_string(m.slot[static_cast<size_t>(fi)]) + "]";
      std::string acc = k == FieldKind::kDouble ? base + ".d" : base + ".i";
      std::string v;
      if (spec.kind != AggKind::kCountStar) {
        TVal tv = GenExpr(spec.expr, in_row, cs, cm);
        v = k == FieldKind::kDouble ? Dbl(tv) : Num(tv);
      }
      switch (spec.kind) {
        case AggKind::kCountStar:
          body += init ? "  " + acc + " = 1;\n" : "  " + acc + "++;\n";
          break;
        case AggKind::kSum:
          body += init ? "  " + acc + " = " + v + ";\n"
                       : "  " + acc + " += " + v + ";\n";
          break;
        case AggKind::kMin:
          body += init ? "  " + acc + " = " + v + ";\n"
                       : "  if (" + v + " < " + acc + ") " + acc + " = " + v +
                             ";\n";
          break;
        case AggKind::kMax:
          body += init ? "  " + acc + " = " + v + ";\n"
                       : "  if (" + v + " > " + acc + ") " + acc + " = " + v +
                             ";\n";
          break;
      }
    }
    return body;
  }

  std::string GenScalarAgg(const PlanRef& p, const Schema& out,
                           const SlotMap& m, const Consumer& consume) {
    Schema cs = plan::OutputSchema(p->children[0], *db_);
    SlotMap cm(cs);
    std::string acc = Fresh("acc");
    decls_ += "  lb2t_val " + acc + "[" + std::to_string(m.width) + "];\n";
    std::string c;
    for (size_t a = 0; a < p->aggs.size(); ++a) {
      FieldKind k = out.field(static_cast<int>(a)).kind;
      std::string base =
          acc + "[" + std::to_string(m.slot[a]) + "]";
      std::string sentinel;
      switch (p->aggs[a].kind) {
        case AggKind::kMin: sentinel = k == FieldKind::kDouble ? "1e300" : "INT64_MAX"; break;
        case AggKind::kMax: sentinel = k == FieldKind::kDouble ? "-1e300" : "INT64_MIN"; break;
        default: sentinel = "0";
      }
      c += "  " + base + (k == FieldKind::kDouble ? ".d = " : ".i = ") +
           sentinel + ";\n";
    }
    c += GenOp(p->children[0], [&](const std::string& row) {
      std::string body;
      for (size_t a = 0; a < p->aggs.size(); ++a) {
        const auto& spec = p->aggs[a];
        FieldKind k = out.field(static_cast<int>(a)).kind;
        std::string base = acc + "[" + std::to_string(m.slot[a]) + "]";
        std::string av = k == FieldKind::kDouble ? base + ".d" : base + ".i";
        std::string v;
        if (spec.kind != AggKind::kCountStar) {
          TVal tv = GenExpr(spec.expr, row, cs, cm);
          v = k == FieldKind::kDouble ? Dbl(tv) : Num(tv);
        }
        switch (spec.kind) {
          case AggKind::kCountStar: body += "  " + av + "++;\n"; break;
          case AggKind::kSum: body += "  " + av + " += " + v + ";\n"; break;
          case AggKind::kMin:
            body += "  if (" + v + " < " + av + ") " + av + " = " + v + ";\n";
            break;
          case AggKind::kMax:
            body += "  if (" + v + " > " + av + ") " + av + " = " + v + ";\n";
            break;
        }
      }
      return body;
    });
    c += consume(acc);
    return c;
  }

  std::string GenSort(const PlanRef& p, const Schema& out, const SlotMap& m,
                      const Consumer& consume) {
    std::string vec = Fresh("vec");
    decls_ += "  lb2t_vec " + vec + " = {0, 0, 0};\n";
    frees_ += "  lb2t_vec_free(&" + vec + ");\n";
    std::string c = GenOp(p->children[0], [&](const std::string& row) {
      return "  lb2t_vec_push(&" + vec + ", lb2t_row_copy(" + row + ", " +
             std::to_string(m.width) + "));\n";
    });
    // Generated comparator at file scope.
    std::string cmp = Fresh("lb2t_cmp");
    std::string fn = "static int " + cmp +
                     "(const void* pa, const void* pb) {\n"
                     "  const lb2t_val* a = *(lb2t_val* const*)pa;\n"
                     "  const lb2t_val* b = *(lb2t_val* const*)pb;\n";
    for (const auto& k : p->sort_keys) {
      int i = out.IndexOf(k.name);
      std::string sa = "a[" + std::to_string(m.slot[static_cast<size_t>(i)]) + "]";
      std::string sb = "b[" + std::to_string(m.slot[static_cast<size_t>(i)]) + "]";
      const char* lt = k.asc ? "-1" : "1";
      const char* gt = k.asc ? "1" : "-1";
      switch (out.field(i).kind) {
        case FieldKind::kInt64:
        case FieldKind::kDate:
          fn += "  if (" + sa + ".i < " + sb + ".i) return " + lt +
                "; if (" + sa + ".i > " + sb + ".i) return " + gt + ";\n";
          break;
        case FieldKind::kDouble:
          fn += "  if (" + sa + ".d < " + sb + ".d) return " + lt +
                "; if (" + sa + ".d > " + sb + ".d) return " + gt + ";\n";
          break;
        case FieldKind::kString: {
          std::string la = "a[" +
                           std::to_string(m.slot[static_cast<size_t>(i)] + 1) +
                           "].i";
          std::string lb = "b[" +
                           std::to_string(m.slot[static_cast<size_t>(i)] + 1) +
                           "].i";
          fn += "  { int32_t cres = lb2_str_cmp(" + sa + ".p, (int32_t)" + la +
                ", " + sb + ".p, (int32_t)" + lb + "); if (cres) return " +
                (k.asc ? "cres" : "-cres") + "; }\n";
          break;
        }
      }
    }
    fn += "  return a < b ? -1 : (a > b ? 1 : 0);\n}\n";
    functions_ += fn;
    c += "  qsort(" + vec + ".rows, (size_t)" + vec +
         ".n, sizeof(lb2t_val*), " + cmp + ");\n";
    std::string i = Fresh("i");
    std::string row = Fresh("r");
    c += "  for (int64_t " + i + " = 0; " + i + " < " + vec + ".n; " + i +
         "++) {\n";
    c += "  lb2t_val* " + row + " = " + vec + ".rows[" + i + "];\n";
    c += consume(row);
    c += "  }\n";
    return c;
  }

  const plan::Query& query_;
  const rt::Database* db_;
  rt::EnvLayout* env_ = nullptr;
  int counter_ = 0;
  std::string binds_;
  std::string decls_;
  std::string frees_;
  std::string functions_;
  std::map<std::string, std::string> col_vars_;
};

}  // namespace

CompiledQuery CompileTemplateQuery(const plan::Query& q,
                                   const rt::Database& db,
                                   const std::string& tag) {
  plan::ValidateQuery(q, db);
  Stopwatch gen_timer;
  rt::EnvLayout env;
  TemplateGen gen(q, db);
  std::string source = gen.Generate(&env);
  double gen_ms = gen_timer.ElapsedMs();

  std::string leaked = stage::FindMutableFileScopeState(source);
  LB2_CHECK_MSG(leaked.empty(),
                ("mutable file-scope state in generated code: " + leaked)
                    .c_str());

  CompiledQuery cq;
  cq.mod_ = stage::Jit::CompileSource(source, tag);
  cq.fn_ = cq.mod_->entry("lb2_query");
  cq.ctx_bytes_ = cq.mod_->ctx_bytes();
  cq.env_ = env.Materialize(db);
  cq.codegen_ms_ = gen_ms;
  return cq;
}

}  // namespace lb2::compile
