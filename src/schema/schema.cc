#include "schema/schema.h"

#include "util/check.h"

namespace lb2::schema {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const Field& Schema::Get(const std::string& name) const {
  int i = IndexOf(name);
  LB2_CHECK_MSG(i >= 0, ("no field named " + name + " in " + ToString()).c_str());
  return fields_[static_cast<size_t>(i)];
}

void Schema::Add(const Field& f) {
  LB2_CHECK_MSG(!Has(f.name), ("duplicate field " + f.name).c_str());
  fields_.push_back(f);
}

Schema Schema::Concat(const Schema& other) const {
  Schema out = *this;
  for (const Field& f : other.fields_) out.Add(f);
  return out;
}

Schema Schema::Select(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& n : names) out.Add(Get(n));
  return out;
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += FieldKindName(fields_[i].kind);
  }
  out += "]";
  return out;
}

}  // namespace lb2::schema
