// Logical field types. Dates are int32 yyyymmdd; decimals are doubles (the
// same representation choices LB2 and DBLAB make, per Section 5.1 of the
// paper).
#ifndef LB2_SCHEMA_FIELD_H_
#define LB2_SCHEMA_FIELD_H_

#include <string>

namespace lb2::schema {

enum class FieldKind {
  kInt64,   // integers and keys
  kDouble,  // decimals
  kDate,    // int32 yyyymmdd
  kString,  // variable-length byte string
};

/// Returns a short human-readable name ("int64", "string", ...).
const char* FieldKindName(FieldKind kind);

/// One named, typed attribute.
struct Field {
  std::string name;
  FieldKind kind;

  bool operator==(const Field& other) const = default;
};

}  // namespace lb2::schema

#endif  // LB2_SCHEMA_FIELD_H_
