#include "schema/field.h"

namespace lb2::schema {

const char* FieldKindName(FieldKind kind) {
  switch (kind) {
    case FieldKind::kInt64: return "int64";
    case FieldKind::kDouble: return "double";
    case FieldKind::kDate: return "date";
    case FieldKind::kString: return "string";
  }
  return "?";
}

}  // namespace lb2::schema
