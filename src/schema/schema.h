// Schema: an ordered list of named fields, with the lookup/concat/rename
// operations plan validation needs. Schemas exist only at plan/generation
// time — they never appear in generated code.
#ifndef LB2_SCHEMA_SCHEMA_H_
#define LB2_SCHEMA_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "schema/field.h"

namespace lb2::schema {

class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int size() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// True if a field named `name` exists.
  bool Has(const std::string& name) const { return IndexOf(name) >= 0; }

  /// Field by name; aborts if absent.
  const Field& Get(const std::string& name) const;

  /// Appends a field; aborts on duplicate names.
  void Add(const Field& f);

  /// Schema with this schema's fields followed by `other`'s.
  Schema Concat(const Schema& other) const;

  /// Schema restricted to `names` (in the given order).
  Schema Select(const std::vector<std::string>& names) const;

  /// "name:kind, name:kind, ..." — for error messages and tests.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace lb2::schema

#endif  // LB2_SCHEMA_SCHEMA_H_
