// Lock-free metrics for the query service: atomic counters and gauges, a
// double accumulator, and log-bucketed latency histograms, collected in a
// registry that renders Prometheus text or JSON.
//
// Design constraints, in order:
//   * The hot path (a warm cache hit) must pay at most a handful of relaxed
//     atomic adds — no mutex, no allocation, no string work. Every metric
//     type here is a fixed-size block of std::atomic fields.
//   * Readers (the scrape path) never stop writers: snapshots are relaxed
//     loads, so a rendered view may be torn by a few in-flight increments —
//     the standard Prometheus contract, where adjacent scrapes converge.
//   * Histograms trade precision for constant cost: power-of-two buckets
//     (bucket i counts values in [2^i, 2^(i+1)-1]), so a reported
//     percentile is an upper bound at most 2x the true value — plenty for
//     latency work spanning nanoseconds to seconds.
#ifndef LB2_OBS_METRICS_H_
#define LB2_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lb2::obs {

/// CAS-loop accumulate: std::atomic<double>::fetch_add is not guaranteed
/// before C++20 library support we don't assume, and contention on these
/// is negligible (compile-path only).
inline void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing integer counter.
class Counter {
 public:
  void Inc(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Settable point-in-time value.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Monotonically increasing double accumulator (e.g. milliseconds saved).
class FCounter {
 public:
  void Add(double d) { AtomicAddDouble(&v_, d); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram over non-negative int64 samples (latencies in
/// ns). Observe is wait-free: one bucket add, a count add, a sum add, and a
/// CAS-max. Percentiles are reconstructed from the buckets and report the
/// containing bucket's upper bound (<= 2x the true order statistic).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for `v`: 0 for v <= 1, else floor(log2(v)).
  static int BucketIndex(int64_t v) {
    if (v <= 1) return 0;
    return std::bit_width(static_cast<uint64_t>(v)) - 1;
  }

  /// Largest value bucket `idx` counts (inclusive).
  static int64_t BucketUpperBound(int idx) {
    if (idx >= 62) return INT64_MAX;
    return (static_cast<int64_t>(1) << (idx + 1)) - 1;
  }

  void Observe(int64_t v) {
    if (v < 0) v = 0;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
    }
  }

  /// Attaches an OpenMetrics exemplar: the trace id of a recently kept
  /// flight-recorder trace plus the observed value it annotates, so a
  /// latency spike in a dashboard links straight to the trace that paid
  /// it. Two relaxed atomics — a racing scrape may pair a fresh id with a
  /// stale value, which is fine for a debugging pointer. Ignored when
  /// trace_id is 0 (no trace context on this request).
  void SetExemplar(uint64_t trace_id, int64_t value) {
    if (trace_id == 0) return;
    ex_value_.store(value, std::memory_order_relaxed);
    ex_trace_.store(trace_id, std::memory_order_relaxed);
  }
  uint64_t ExemplarTrace() const {
    return ex_trace_.load(std::memory_order_relaxed);
  }
  int64_t ExemplarValue() const {
    return ex_value_.load(std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  /// Value such that at least `p` (in [0,1]) of observed samples are <= it
  /// (the containing bucket's upper bound; the true max caps the top
  /// bucket). 0 when empty.
  int64_t Percentile(double p) const;

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<uint64_t> ex_trace_{0};
  std::atomic<int64_t> ex_value_{-1};
};

/// Prometheus-style label set; order is preserved in the rendering.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metrics with stable addresses. Registration (Get*) takes a mutex
/// and is meant for setup paths; the returned pointers are then updated
/// lock-free for the registry's lifetime. Get* with the same name+labels
/// returns the same instance (and checks the kind matches).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  FCounter* GetFCounter(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition: TYPE comments, `name{labels} value` lines,
  /// histograms as cumulative `_bucket{le=...}`/`_sum`/`_count` plus
  /// derived `_p50`/`_p95`/`_p99`/`_max` gauges.
  std::string RenderPrometheus() const;

  /// JSON array of metric objects (name, labels, type, value or histogram
  /// summary stats).
  std::string RenderJson() const;

 private:
  enum class Kind { kCounter, kGauge, kFCounter, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FCounter> fcounter;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
};

}  // namespace lb2::obs

#endif  // LB2_OBS_METRICS_H_
