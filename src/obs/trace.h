// Per-request trace spans: a flat list of named durations covering the
// service pipeline (fingerprint -> admission -> disk-probe -> stage -> cc ->
// exec -> total). Spans are recorded with util/time.h NowNs() differences
// and attached to the ServiceResult, so a driver's `--trace` flag can log
// exactly where each request spent its time without a profiler attached.
#ifndef LB2_OBS_TRACE_H_
#define LB2_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/str.h"

namespace lb2::obs {

struct Span {
  std::string name;
  int64_t ns = 0;
};

using SpanList = std::vector<Span>;

/// One-line rendering: "fingerprint=0.012ms admission=0.001ms exec=1.3ms".
inline std::string RenderSpans(const SpanList& spans) {
  std::string out;
  for (const Span& s : spans) {
    if (!out.empty()) out += ' ';
    out += s.name + "=" + StrPrintf("%.3fms", static_cast<double>(s.ns) / 1e6);
  }
  return out;
}

/// Collects per-request span lists and writes them as Chrome `trace_event`
/// JSON — load the file in chrome://tracing (or Perfetto) to see each
/// request as a named slice with its pipeline stages nested under it.
///
/// Spans carry only durations, so stages are laid out back-to-back from the
/// request's start timestamp: gaps between instrumented stages collapse,
/// which slightly left-shifts later stages but preserves every duration and
/// the request's true start/extent. Thread-safe; Add is a mutex push_back,
/// cheap enough to leave on for whole serving runs. Collection is capped
/// (kMaxEvents) so a long-lived server cannot grow without bound — the
/// file then notes how many requests were dropped.
class ChromeTraceWriter {
 public:
  /// Events beyond this are dropped (counted, reported in the file).
  static constexpr size_t kMaxEvents = 1 << 20;

  explicit ChromeTraceWriter(std::string path) : path_(std::move(path)) {}

  /// Records one request: an enclosing slice named `name` on track `tid`
  /// starting at `start_ns` (NowNs clock), with one child slice per span.
  void Add(const std::string& name, int tid, int64_t start_ns,
           const SpanList& spans);

  /// Writes everything collected so far as a `{"traceEvents": [...]}`
  /// JSON document. Returns false (and fills *error) on I/O failure.
  bool WriteFile(std::string* error);

  const std::string& path() const { return path_; }
  int64_t dropped() const;

 private:
  struct Event {
    std::string name;
    int tid;
    int64_t ts_ns;
    int64_t dur_ns;
  };

  const std::string path_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  int64_t dropped_ = 0;
};

}  // namespace lb2::obs

#endif  // LB2_OBS_TRACE_H_
