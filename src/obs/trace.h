// Per-request trace spans: a flat list of named durations covering the
// service pipeline (fingerprint -> admission -> disk-probe -> stage -> cc ->
// exec -> total). Spans are recorded with util/time.h NowNs() differences
// and attached to the ServiceResult, so a driver's `--trace` flag can log
// exactly where each request spent its time without a profiler attached.
#ifndef LB2_OBS_TRACE_H_
#define LB2_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/str.h"

namespace lb2::obs {

struct Span {
  std::string name;
  int64_t ns = 0;
};

using SpanList = std::vector<Span>;

/// One-line rendering: "fingerprint=0.012ms admission=0.001ms exec=1.3ms".
inline std::string RenderSpans(const SpanList& spans) {
  std::string out;
  for (const Span& s : spans) {
    if (!out.empty()) out += ' ';
    out += s.name + "=" + StrPrintf("%.3fms", static_cast<double>(s.ns) / 1e6);
  }
  return out;
}

}  // namespace lb2::obs

#endif  // LB2_OBS_TRACE_H_
