// Per-request trace spans: a tree of named intervals covering the service
// pipeline (parse -> fingerprint -> admission -> build{stage, cc, dlopen} ->
// exec). Each span carries real begin/end timestamps on the util/time.h
// NowNs() clock plus the index of its parent span, so concurrent stages
// (single-flight cc while a follower interprets, drift rebuilds, explorer
// sweeps) render truthfully instead of being laid back-to-back. Spans are
// attached to the ServiceResult, so a driver's `--trace` flag can log
// exactly where each request spent its time without a profiler attached.
#ifndef LB2_OBS_TRACE_H_
#define LB2_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/str.h"

namespace lb2::obs {

struct Span {
  std::string name;
  int64_t begin_ns = 0;  // NowNs clock
  int64_t end_ns = 0;
  int32_t parent = -1;  // index of the parent span in the same SpanList
};

using SpanList = std::vector<Span>;

inline int64_t SpanNs(const Span& s) { return s.end_ns - s.begin_ns; }

/// Minimal JSON string escaping (quotes, backslashes, control bytes) shared
/// by the trace writer, the flight recorder, and the admin endpoints.
std::string JsonEscape(const std::string& s);

/// Appends `src` to `*dst`, shifting every intra-src parent index and
/// attaching src's roots (parent < 0) under `root_parent` (an index into
/// `*dst`, or -1 to keep them roots). Used to graft the service's span
/// tree under the net layer's enclosing "request" span.
void GraftSpans(SpanList* dst, const SpanList& src, int32_t root_parent);

/// One-line rendering: "parse=0.004ms fingerprint=0.012ms exec=1.300ms".
/// Spans are rendered in begin-timestamp order (ties keep list order), so
/// the line reads left-to-right in wall-clock order even though producers
/// append spans when they *complete*.
std::string RenderSpans(const SpanList& spans);

/// Multi-line rendering of the span tree: children indented under their
/// parent, each line "name  +offset_ms  dur_ms" where offset is relative
/// to the earliest begin. The EXPLAIN ANALYZE-style slow-query log builds
/// on this (see obs/recorder.h).
std::string RenderSpanTree(const SpanList& spans);

/// Collects per-request span lists and writes them as Chrome `trace_event`
/// JSON — load the file in chrome://tracing (or Perfetto) to see each
/// request as a named slice with its pipeline stages nested under it.
///
/// Spans carry real begin/end timestamps, so overlapping stages (a leader's
/// `cc` racing a follower's interpreted `exec`, drift rebuilds behind
/// foreground traffic) render at their true positions — gaps between
/// instrumented stages stay visible. Thread-safe; Add is a mutex push_back,
/// cheap enough to leave on for whole serving runs. Collection is capped
/// (kMaxEvents) so a long-lived server cannot grow without bound — the
/// file then notes how many requests were dropped.
class ChromeTraceWriter {
 public:
  /// Events beyond this are dropped (counted, reported in the file).
  static constexpr size_t kMaxEvents = 1 << 20;

  explicit ChromeTraceWriter(std::string path) : path_(std::move(path)) {}

  /// Records one request: an enclosing slice named `name` on track `tid`
  /// from `start_ns` (NowNs clock) to the latest span end, with one child
  /// slice per span at its true timestamps.
  void Add(const std::string& name, int tid, int64_t start_ns,
           const SpanList& spans);

  /// Writes everything collected so far as a `{"traceEvents": [...]}`
  /// JSON document. Returns false (and fills *error) on I/O failure.
  bool WriteFile(std::string* error);

  const std::string& path() const { return path_; }
  int64_t dropped() const;

 private:
  struct Event {
    std::string name;
    int tid;
    int64_t ts_ns;
    int64_t dur_ns;
  };

  const std::string path_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  int64_t dropped_ = 0;
};

}  // namespace lb2::obs

#endif  // LB2_OBS_TRACE_H_
