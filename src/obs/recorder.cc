#include "obs/recorder.h"

#include <algorithm>
#include <cstdlib>

#include "util/str.h"

namespace lb2::obs {

namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

FlightRecorder::Options FlightRecorder::OptionsFromEnv(int workers) {
  Options o;
  o.workers = workers;
  int64_t ring = EnvInt64("LB2_TRACE_RING", static_cast<int64_t>(o.ring));
  o.ring = ring <= 0 ? 0 : static_cast<size_t>(ring);
  double slow_ms =
      EnvDouble("LB2_SLOW_MS", static_cast<double>(o.slow_ns) / 1e6);
  o.slow_ns = slow_ms <= 0 ? 0 : static_cast<int64_t>(slow_ms * 1e6);
  int64_t every = EnvInt64("LB2_TRACE_SAMPLE",
                           static_cast<int64_t>(o.sample_every));
  o.sample_every = every <= 0 ? 0 : static_cast<uint64_t>(every);
  return o;
}

FlightRecorder::FlightRecorder(Options opts) : opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.ring > 0) {
    rings_.reserve(static_cast<size_t>(opts_.workers));
    for (int i = 0; i < opts_.workers; ++i) {
      auto ring = std::make_unique<Ring>();
      ring->slots.resize(opts_.ring);
      rings_.push_back(std::move(ring));
    }
  }
}

bool FlightRecorder::Record(int worker, RecordedTrace&& t) {
  if (opts_.ring == 0) return false;
  uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
  const char* keep = nullptr;
  if (t.status == "error") {
    keep = "error";
  } else if (t.status == "busy") {
    keep = "busy";
  } else if (t.breaker) {
    keep = "breaker";
  } else if (t.fault) {
    keep = "fault";
  } else if (t.switched) {
    // Mid-query interpreted→compiled handoffs are rare (one per cold shape
    // at most) and exactly the traces an operator wants to see: the span
    // tree shows the interp prefix overlapping the background build.
    keep = "switch";
  } else if (opts_.slow_ns > 0 && t.end_ns - t.begin_ns >= opts_.slow_ns) {
    keep = "slow";
  } else if (opts_.sample_every > 0 &&
             SplitMix64(opts_.seed + tick) % opts_.sample_every == 0) {
    keep = "sampled";
  }
  if (keep == nullptr) return false;
  t.keep = keep;
  if (worker < 0 || worker >= opts_.workers) worker = 0;
  t.worker = worker;
  const uint64_t trace_id = t.trace_id;
  Ring& ring = *rings_[static_cast<size_t>(worker)];
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    ring.slots[ring.next % ring.slots.size()] = std::move(t);
    ++ring.next;
  }
  kept_.fetch_add(1, std::memory_order_relaxed);
  last_kept_.store(trace_id, std::memory_order_relaxed);
  return true;
}

std::vector<RecordedTrace> FlightRecorder::Snapshot() const {
  std::vector<RecordedTrace> out;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    uint64_t n = std::min<uint64_t>(ring->next, ring->slots.size());
    for (uint64_t i = ring->next - n; i < ring->next; ++i) {
      out.push_back(ring->slots[i % ring->slots.size()]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RecordedTrace& a, const RecordedTrace& b) {
                     return a.end_ns < b.end_ns;
                   });
  return out;
}

std::string TracesJson(const std::vector<RecordedTrace>& traces) {
  std::string out = "[";
  bool first_t = true;
  for (const RecordedTrace& t : traces) {
    out += first_t ? "\n" : ",\n";
    first_t = false;
    out += StrPrintf(
        " {\"trace_id\": \"%016llx\", \"request_id\": %llu, \"worker\": %d, "
        "\"name\": \"%s\", \"status\": \"%s\", \"keep\": \"%s\", "
        "\"latency_ms\": %.3f, \"fault\": %s, \"breaker\": %s, "
        "\"switched\": %s",
        static_cast<unsigned long long>(t.trace_id),
        static_cast<unsigned long long>(t.request_id), t.worker,
        JsonEscape(t.name).c_str(), JsonEscape(t.status).c_str(),
        JsonEscape(t.keep).c_str(),
        static_cast<double>(t.end_ns - t.begin_ns) / 1e6,
        t.fault ? "true" : "false", t.breaker ? "true" : "false",
        t.switched ? "true" : "false");
    if (!t.flavor.empty()) {
      out += ", \"flavor\": \"" + JsonEscape(t.flavor) + "\"";
    }
    if (!t.params.empty()) {
      out += ", \"params\": \"" + JsonEscape(t.params) + "\"";
    }
    if (!t.sql.empty()) out += ", \"sql\": \"" + JsonEscape(t.sql) + "\"";
    out += ", \"spans\": [";
    bool first_s = true;
    for (const Span& s : t.spans) {
      out += StrPrintf(
          "%s{\"name\": \"%s\", \"parent\": %d, \"begin_us\": %.3f, "
          "\"dur_us\": %.3f}",
          first_s ? "" : ", ", JsonEscape(s.name).c_str(), s.parent,
          static_cast<double>(s.begin_ns - t.begin_ns) / 1e3,
          static_cast<double>(SpanNs(s)) / 1e3);
      first_s = false;
    }
    out += "]";
    if (!t.profile.empty()) {
      out += ", \"profile\": \"" + JsonEscape(t.profile) + "\"";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string TracesChrome(const std::vector<RecordedTrace>& traces) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& name, int tid, int64_t ts_ns,
                  int64_t dur_ns) {
    out += StrPrintf(
        "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        first ? "" : ",\n", JsonEscape(name).c_str(), tid,
        static_cast<double>(ts_ns) / 1e3, static_cast<double>(dur_ns) / 1e3);
    first = false;
  };
  for (const RecordedTrace& t : traces) {
    for (const Span& s : t.spans) emit(s.name, t.worker, s.begin_ns, SpanNs(s));
    // Traces whose span list lacks a root (e.g. recorded before any stage
    // instrumented) still get their enclosing slice.
    if (t.spans.empty()) emit(t.name, t.worker, t.begin_ns, t.end_ns - t.begin_ns);
  }
  out += "\n]}\n";
  return out;
}

std::string RenderSlowQuery(const RecordedTrace& t) {
  std::string out = StrPrintf(
      "trace %016llx: %s %.3fms status=%s keep=%s worker=%d req=%llu",
      static_cast<unsigned long long>(t.trace_id), t.name.c_str(),
      static_cast<double>(t.end_ns - t.begin_ns) / 1e6, t.status.c_str(),
      t.keep.c_str(), t.worker,
      static_cast<unsigned long long>(t.request_id));
  if (!t.flavor.empty()) out += " flavor=" + t.flavor;
  if (t.fault) out += " fault=1";
  if (t.breaker) out += " breaker=1";
  out += "\n";
  if (!t.sql.empty()) out += "  sql: " + t.sql + "\n";
  if (!t.params.empty()) out += "  params: " + t.params + "\n";
  out += RenderSpanTree(t.spans);
  if (!t.profile.empty()) {
    // The per-operator join: the profiled engine counters rendered under
    // the span tree, so one log entry answers both "which stage" and
    // "which operator".
    out += "  operators (rows, inclusive time):\n";
    size_t pos = 0;
    while (pos < t.profile.size()) {
      size_t nl = t.profile.find('\n', pos);
      if (nl == std::string::npos) nl = t.profile.size();
      out += "    " + t.profile.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

}  // namespace lb2::obs
