// Tail-sampled flight recorder: every request assembles its span tree
// cheaply (worker-local, no shared state), and *completion* decides
// retention — slow requests (latency above LB2_SLOW_MS), ERROR/BUSY
// responses, fault-degraded, breaker-served and mid-query-switched
// requests are always kept, plus a deterministic 1-in-N of the rest
// (LB2_TRACE_SAMPLE). Kept traces
// land in per-worker ring buffers (LB2_TRACE_RING slots each) so a scrape
// of admin `GET /traces` — or the post-drain `--trace-out` flush — always
// has the most recent interesting requests, not a firehose.
//
// Concurrency: the drop path (the overwhelming majority under healthy
// load) touches a single relaxed atomic for the 1-in-N tick. Only a keep
// takes that worker's ring mutex, which is never contended by other
// workers — only by the (rare) admin scrape.
#ifndef LB2_OBS_RECORDER_H_
#define LB2_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace lb2::obs {

/// SplitMix64: the sampler's hash, exposed so tests can recompute the
/// expected retention set for a fixed seed.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One completed request's trace: identity, outcome, the span tree (root
/// at index 0, parent links inside), and the pre-rendered per-operator
/// profile when this request happened to be a sampled profiled run.
struct RecordedTrace {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  int worker = 0;
  int64_t begin_ns = 0;  // decode timestamp (NowNs clock)
  int64_t end_ns = 0;    // completion timestamp
  std::string name;      // serving path ("warm", "compiled", ...) or outcome
  std::string status;    // "ok" | "error" | "busy"
  std::string keep;      // retention reason, filled by Record() when kept
  std::string sql;       // statement text (caller may truncate)
  std::string flavor;    // codegen flavor served, when known
  std::string params;    // rendered param bindings ("$0=24 $1='AIR'")
  std::string profile;   // rendered per-operator tree (empty unless sampled)
  bool fault = false;    // a fault point fired while this request ran
  bool breaker = false;  // served degraded by an open circuit breaker
  bool switched = false; // interpreted→compiled handoff at a morsel boundary
  SpanList spans;
};

class FlightRecorder {
 public:
  struct Options {
    int workers = 1;
    size_t ring = 64;             // kept traces retained per worker
    int64_t slow_ns = 50'000'000; // keep when latency >= this; <=0 disables
    uint64_t sample_every = 100;  // keep 1-in-N of the rest; 0 disables
    uint64_t seed = 0x5bd1e995;   // sampler seed (fixed => deterministic)
  };

  /// Reads LB2_TRACE_RING (slots per worker, 0 disables the recorder),
  /// LB2_SLOW_MS (slow-keep threshold, float ms) and LB2_TRACE_SAMPLE
  /// (keep 1-in-N of unremarkable requests) on top of the defaults.
  static Options OptionsFromEnv(int workers);

  explicit FlightRecorder(Options opts);

  bool enabled() const { return opts_.ring > 0; }

  /// The tail-sampling decision. Fills t.keep and stores the trace when
  /// retained; returns whether it was kept. `worker` selects the ring
  /// (clamped into range, so callers without a worker identity pass 0).
  bool Record(int worker, RecordedTrace&& t);

  /// All currently retained traces, oldest to newest by completion time.
  std::vector<RecordedTrace> Snapshot() const;

  int64_t seen_total() const { return ticks_.load(std::memory_order_relaxed); }
  int64_t kept_total() const { return kept_.load(std::memory_order_relaxed); }
  /// Trace id of the most recently kept trace (0 if none yet) — the
  /// OpenMetrics exemplar source.
  uint64_t last_kept_trace_id() const {
    return last_kept_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return opts_; }

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<RecordedTrace> slots;
    uint64_t next = 0;  // monotone write cursor; slot = next % slots.size()
  };

  Options opts_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<uint64_t> ticks_{0};
  std::atomic<int64_t> kept_{0};
  std::atomic<uint64_t> last_kept_{0};
};

/// Renders traces as a JSON array for admin `GET /traces`: identity,
/// outcome, keep reason, latency, and the span tree with begin offsets
/// (µs, relative to the trace begin) and parent links.
std::string TracesJson(const std::vector<RecordedTrace>& traces);

/// Renders traces as a Chrome trace_event document (`?fmt=chrome`); one
/// track per worker, spans at their true timestamps.
std::string TracesChrome(const std::vector<RecordedTrace>& traces);

/// EXPLAIN ANALYZE-style rendering of one kept trace for the slow-query
/// log: a header (trace id, path, status, latency, flavor, bindings),
/// the indented span tree, and — when the request was a sampled profiled
/// run — the per-operator rows/ns tree joined underneath.
std::string RenderSlowQuery(const RecordedTrace& t);

}  // namespace lb2::obs

#endif  // LB2_OBS_RECORDER_H_
