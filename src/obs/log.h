// Leveled logging for the library and the service. All diagnostics funnel
// through LB2_LOG so operators (and benchmarks) control verbosity with one
// env knob instead of hunting down fprintf sites:
//
//   LB2_LOG_LEVEL=error ./lb2_serve ...   # errors only
//   LB2_LOG_LEVEL=debug ./sql_shell       # everything
//
// Levels: off < error < warn (default) < info < debug. The threshold is
// parsed from the environment once, on first use; tests can override it in
// process with SetLogThreshold.
#ifndef LB2_OBS_LOG_H_
#define LB2_OBS_LOG_H_

namespace lb2::obs {

enum class LogLevel { kOff = -1, kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// The active threshold: messages with level <= threshold are emitted.
LogLevel LogThreshold();

/// Overrides the threshold for this process (tests; embedding hosts).
void SetLogThreshold(LogLevel level);

/// Parses "off"/"error"/"warn"/"info"/"debug" (case-insensitive); falls back
/// to kWarn on anything unrecognized.
LogLevel ParseLogLevel(const char* s);

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(LogThreshold());
}

/// Writes one "[lb2 <level>] ..." line to stderr (a newline is appended if
/// the message lacks one). Prefer the LB2_LOG macro, which skips argument
/// evaluation when the level is disabled.
void LogWrite(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace lb2::obs

/// LB2_LOG(Warn, "compile failed: %s", err) — level is Error/Warn/Info/Debug.
#define LB2_LOG(level_, ...)                                              \
  do {                                                                    \
    if (::lb2::obs::LogEnabled(::lb2::obs::LogLevel::k##level_)) {        \
      ::lb2::obs::LogWrite(::lb2::obs::LogLevel::k##level_, __VA_ARGS__); \
    }                                                                     \
  } while (0)

#endif  // LB2_OBS_LOG_H_
