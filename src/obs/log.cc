#include "obs/log.h"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lb2::obs {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

// kWarn matches the pre-logger behavior: service warnings were always
// printed, and there were no info/debug messages to suppress.
std::atomic<int> g_threshold{
    static_cast<int>(ParseLogLevel(std::getenv("LB2_LOG_LEVEL")))};

}  // namespace

LogLevel ParseLogLevel(const char* s) {
  if (s == nullptr) return LogLevel::kWarn;
  std::string v;
  for (const char* p = s; *p != '\0'; ++p) {
    v += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (v == "off" || v == "none") return LogLevel::kOff;
  if (v == "error") return LogLevel::kError;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

LogLevel LogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogWrite(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char stack_buf[1024];
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  std::string msg;
  if (n >= 0 && static_cast<size_t>(n) < sizeof(stack_buf)) {
    msg.assign(stack_buf, static_cast<size_t>(n));
  } else if (n >= 0) {
    msg.resize(static_cast<size_t>(n));
    std::vsnprintf(msg.data(), msg.size() + 1, fmt, copy);
  }
  va_end(copy);
  va_end(args);
  if (msg.empty() || msg.back() != '\n') msg += '\n';
  // One fprintf per message so concurrent threads never interleave lines.
  std::fprintf(stderr, "[lb2 %s] %s", LevelName(level), msg.c_str());
}

}  // namespace lb2::obs
