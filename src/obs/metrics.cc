#include "obs/metrics.h"

#include <cmath>

#include "util/check.h"
#include "util/str.h"

namespace lb2::obs {

int64_t Histogram::Percentile(double p) const {
  int64_t count = Count();
  if (count <= 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  int64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += BucketCount(i);
    if (cum >= rank) {
      int64_t bound = BucketUpperBound(i);
      int64_t max = Max();
      // The recorded max tightens the top occupied bucket (exact for p=1).
      return bound < max ? bound : max;
    }
  }
  return Max();
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        const Labels& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      LB2_CHECK_MSG(e->kind == kind,
                    ("metric re-registered with a different kind: " + name)
                        .c_str());
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->kind = kind;
  switch (kind) {
    case Kind::kCounter: e->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case Kind::kFCounter: e->fcounter = std::make_unique<FCounter>(); break;
    case Kind::kHistogram: e->histogram = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

FCounter* Registry::GetFCounter(const std::string& name,
                                const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kFCounter)->fcounter.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

namespace {

/// `{a="b",c="d"}` with an optional extra label appended; "" when empty.
std::string RenderLabels(const Labels& labels, const std::string& extra_key,
                         const std::string& extra_val) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_val + "\"";
  }
  out += "}";
  return out;
}

void EmitType(std::string* out, std::vector<std::string>* emitted,
              const std::string& name, const char* type) {
  for (const auto& n : *emitted) {
    if (n == name) return;
  }
  emitted->push_back(name);
  *out += "# TYPE " + name + " " + type + "\n";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":\"" + v + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::vector<std::string> emitted;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        EmitType(&out, &emitted, e->name, "counter");
        out += e->name + RenderLabels(e->labels, "", "") +
               StrPrintf(" %lld\n",
                         static_cast<long long>(e->counter->Value()));
        break;
      case Kind::kGauge:
        EmitType(&out, &emitted, e->name, "gauge");
        out += e->name + RenderLabels(e->labels, "", "") +
               StrPrintf(" %lld\n", static_cast<long long>(e->gauge->Value()));
        break;
      case Kind::kFCounter:
        EmitType(&out, &emitted, e->name, "counter");
        out += e->name + RenderLabels(e->labels, "", "") +
               StrPrintf(" %g\n", e->fcounter->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        EmitType(&out, &emitted, e->name, "histogram");
        // OpenMetrics exemplar: appended to the bucket containing the
        // exemplar value, linking that bucket to a kept trace id.
        const uint64_t ex_trace = h.ExemplarTrace();
        const int64_t ex_value = h.ExemplarValue();
        const int ex_bucket = (ex_trace != 0 && ex_value >= 0)
                                  ? Histogram::BucketIndex(ex_value)
                                  : -1;
        int64_t cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          int64_t c = h.BucketCount(i);
          if (c == 0) continue;  // cumulative counts stay valid
          cum += c;
          out += e->name + "_bucket" +
                 RenderLabels(e->labels, "le",
                              StrPrintf("%lld", static_cast<long long>(
                                                    Histogram::BucketUpperBound(
                                                        i)))) +
                 StrPrintf(" %lld", static_cast<long long>(cum));
          if (i == ex_bucket) {
            out += StrPrintf(" # {trace_id=\"%016llx\"} %lld",
                             static_cast<unsigned long long>(ex_trace),
                             static_cast<long long>(ex_value));
          }
          out += "\n";
        }
        out += e->name + "_bucket" + RenderLabels(e->labels, "le", "+Inf") +
               StrPrintf(" %lld\n", static_cast<long long>(h.Count()));
        out += e->name + "_sum" + RenderLabels(e->labels, "", "") +
               StrPrintf(" %lld\n", static_cast<long long>(h.Sum()));
        out += e->name + "_count" + RenderLabels(e->labels, "", "") +
               StrPrintf(" %lld\n", static_cast<long long>(h.Count()));
        struct { const char* suffix; double p; } quantiles[] = {
            {"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
        for (const auto& q : quantiles) {
          EmitType(&out, &emitted, e->name + q.suffix, "gauge");
          out += e->name + q.suffix + RenderLabels(e->labels, "", "") +
                 StrPrintf(" %lld\n",
                           static_cast<long long>(h.Percentile(q.p)));
        }
        EmitType(&out, &emitted, e->name + "_max", "gauge");
        out += e->name + "_max" + RenderLabels(e->labels, "", "") +
               StrPrintf(" %lld\n", static_cast<long long>(h.Max()));
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"" + e->name + "\",\"labels\":" +
           JsonLabels(e->labels);
    switch (e->kind) {
      case Kind::kCounter:
        out += StrPrintf(",\"type\":\"counter\",\"value\":%lld}",
                         static_cast<long long>(e->counter->Value()));
        break;
      case Kind::kGauge:
        out += StrPrintf(",\"type\":\"gauge\",\"value\":%lld}",
                         static_cast<long long>(e->gauge->Value()));
        break;
      case Kind::kFCounter:
        out += StrPrintf(",\"type\":\"counter\",\"value\":%g}",
                         e->fcounter->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        out += StrPrintf(
            ",\"type\":\"histogram\",\"count\":%lld,\"sum\":%lld,"
            "\"max\":%lld,\"p50\":%lld,\"p95\":%lld,\"p99\":%lld}",
            static_cast<long long>(h.Count()),
            static_cast<long long>(h.Sum()), static_cast<long long>(h.Max()),
            static_cast<long long>(h.Percentile(0.50)),
            static_cast<long long>(h.Percentile(0.95)),
            static_cast<long long>(h.Percentile(0.99)));
        break;
      }
    }
  }
  out += "\n]\n";
  return out;
}

}  // namespace lb2::obs
