#include "obs/trace.h"

#include <cstdio>

namespace lb2::obs {

namespace {

/// Minimal JSON string escaping for span names (quotes, backslashes,
/// control bytes — span names are ASCII identifiers, but the writer must
/// never emit a malformed document whatever it is handed).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void ChromeTraceWriter::Add(const std::string& name, int tid,
                            int64_t start_ns, const SpanList& spans) {
  int64_t total_ns = 0;
  for (const Span& s : spans) total_ns += s.ns;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() + spans.size() + 1 > kMaxEvents) {
    ++dropped_;
    return;
  }
  // Enclosing request slice, then each stage laid back-to-back inside it.
  events_.push_back({name, tid, start_ns, total_ns});
  int64_t cursor = start_ns;
  for (const Span& s : spans) {
    events_.push_back({s.name, tid, cursor, s.ns});
    cursor += s.ns;
  }
}

int64_t ChromeTraceWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ChromeTraceWriter::WriteFile(std::string* error) {
  std::vector<Event> events;
  int64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path_ + " for writing";
    return false;
  }
  std::fputs("{\"traceEvents\": [\n", f);
  bool first = true;
  for (const Event& e : events) {
    // Complete ("X") events with microsecond timestamps, the portable core
    // of the trace_event format that both chrome://tracing and Perfetto
    // accept without a metadata preamble.
    std::string line = StrPrintf(
        "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        first ? "" : ",\n", JsonEscape(e.name).c_str(), e.tid,
        static_cast<double>(e.ts_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3);
    std::fputs(line.c_str(), f);
    first = false;
  }
  std::fputs("\n]", f);
  if (dropped > 0) {
    std::string note = StrPrintf(
        ", \"otherData\": {\"dropped_requests\": %lld}",
        static_cast<long long>(dropped));
    std::fputs(note.c_str(), f);
  }
  std::fputs("}\n", f);
  bool ok = std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "write to " + path_ + " failed";
  return ok;
}

}  // namespace lb2::obs
