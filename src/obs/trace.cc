#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace lb2::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Indexes 0..n-1 stable-sorted by begin timestamp: wall-clock display
/// order regardless of the (completion) order producers appended in.
std::vector<size_t> ByBegin(const SpanList& spans) {
  std::vector<size_t> idx(spans.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&spans](size_t a, size_t b) {
    return spans[a].begin_ns < spans[b].begin_ns;
  });
  return idx;
}

}  // namespace

void GraftSpans(SpanList* dst, const SpanList& src, int32_t root_parent) {
  const int32_t base = static_cast<int32_t>(dst->size());
  for (const Span& s : src) {
    Span copy = s;
    copy.parent = s.parent < 0 ? root_parent : s.parent + base;
    dst->push_back(std::move(copy));
  }
}

std::string RenderSpans(const SpanList& spans) {
  std::string out;
  for (size_t i : ByBegin(spans)) {
    const Span& s = spans[i];
    if (!out.empty()) out += ' ';
    out += s.name + "=" +
           StrPrintf("%.3fms", static_cast<double>(SpanNs(s)) / 1e6);
  }
  return out;
}

std::string RenderSpanTree(const SpanList& spans) {
  if (spans.empty()) return "";
  int64_t t0 = spans.front().begin_ns;
  for (const Span& s : spans) t0 = std::min(t0, s.begin_ns);
  // children[p] lists the spans parented to p, in begin order; roots are
  // parented to -1. Indented depth-first walk from each root.
  std::vector<std::vector<size_t>> children(spans.size() + 1);
  for (size_t i : ByBegin(spans)) {
    int32_t p = spans[i].parent;
    size_t slot = (p >= 0 && static_cast<size_t>(p) < spans.size())
                      ? static_cast<size_t>(p) + 1
                      : 0;
    children[slot].push_back(i);
  }
  std::string out;
  // Iterative DFS: stack of (span index, depth).
  std::vector<std::pair<size_t, int>> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    auto [i, depth] = stack.back();
    stack.pop_back();
    const Span& s = spans[i];
    std::string label(static_cast<size_t>(depth) * 2, ' ');
    label += s.name;
    out += StrPrintf("%-32s +%9.3fms %10.3fms\n", label.c_str(),
                     static_cast<double>(s.begin_ns - t0) / 1e6,
                     static_cast<double>(SpanNs(s)) / 1e6);
    const auto& kids = children[i + 1];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

void ChromeTraceWriter::Add(const std::string& name, int tid,
                            int64_t start_ns, const SpanList& spans) {
  // The enclosing request slice extends to the latest child end so spans
  // recorded after the caller's start timestamp stay inside it.
  int64_t end_ns = start_ns;
  for (const Span& s : spans) end_ns = std::max(end_ns, s.end_ns);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() + spans.size() + 1 > kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, tid, start_ns, end_ns - start_ns});
  for (const Span& s : spans) {
    events_.push_back({s.name, tid, s.begin_ns, SpanNs(s)});
  }
}

int64_t ChromeTraceWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ChromeTraceWriter::WriteFile(std::string* error) {
  std::vector<Event> events;
  int64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path_ + " for writing";
    return false;
  }
  std::fputs("{\"traceEvents\": [\n", f);
  bool first = true;
  for (const Event& e : events) {
    // Complete ("X") events with microsecond timestamps, the portable core
    // of the trace_event format that both chrome://tracing and Perfetto
    // accept without a metadata preamble.
    std::string line = StrPrintf(
        "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
        "\"ts\": %.3f, \"dur\": %.3f}",
        first ? "" : ",\n", JsonEscape(e.name).c_str(), e.tid,
        static_cast<double>(e.ts_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3);
    std::fputs(line.c_str(), f);
    first = false;
  }
  std::fputs("\n]", f);
  if (dropped > 0) {
    std::string note = StrPrintf(
        ", \"otherData\": {\"dropped_requests\": %lld}",
        static_cast<long long>(dropped));
    std::fputs(note.c_str(), f);
  }
  std::fputs("}\n", f);
  bool ok = std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "write to " + path_ + " failed";
  return ok;
}

}  // namespace lb2::obs
