// Runtime compilation of generated C: write the translation unit, invoke the
// system C compiler, dlopen the shared object, resolve the query entry
// point. This is the last leg of the Futamura pipeline — the staged
// interpreter produced a C program; here it becomes native code.
#ifndef LB2_STAGE_JIT_H_
#define LB2_STAGE_JIT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "stage/ir.h"

namespace lb2::stage {

/// Mirror of the generated `lb2_out` struct (see prelude.h). The layouts
/// must match; a static_assert in jit.cc guards the contract.
struct QueryOut {
  char* data = nullptr;
  int64_t len = 0;
  int64_t cap = 0;
  int64_t rows = 0;
  double exec_ms = 0.0;
};

/// Mirror of the generated `lb2_param` struct (see prelude.h): one bound
/// query parameter. Ints/dates/bools ride in i64, doubles keep their bit
/// pattern in f64, strings are (ptr, len) views into host-owned storage.
struct ParamSlot {
  int64_t i64 = 0;
  double f64 = 0.0;
  const char* sp = nullptr;
  int32_t sn = 0;
};

/// Host-side mirror of the generated `lb2_morsel_source` struct (see
/// prelude.h): the shared morsel dispenser. Generated code claims morsels
/// with `__atomic_fetch_add` on `next`; the host side uses std::atomic.
/// Both compile to the same plain fetch-add on every supported target, and
/// the static_asserts in jit.cc pin the layout. `seed` carries partial
/// aggregate rows exported by an interpreted prefix (flat i64 slots);
/// `claims` is an optional per-morsel execution counter for tests.
struct MorselSource {
  std::atomic<long long> next{0};
  long long morsel_rows = 0;
  long long seed_rows = 0;
  const long long* seed = nullptr;
  std::atomic<long long>* claims = nullptr;
  long long claims_len = 0;
};

/// Host-side mirror of the fixed header of the generated `lb2_exec_ctx`
/// struct (see ir.cc). A caller sizes the full context with the module's
/// exported `lb2_ctx_bytes`, zeroes it, and fills in this four-pointer
/// header; the scratch fields that follow are private to the generated
/// code. One context per execution makes the entry fully reentrant.
/// `params` points at `lb2_param_count` bound literals for parameterized
/// modules (may stay null when the module references no parameter slots);
/// `morsels` points at the shared dispenser for morsel-driven runs (null
/// selects the static per-thread range split inside generated code).
struct ExecCtxHeader {
  void** env = nullptr;
  QueryOut* out = nullptr;
  const ParamSlot* params = nullptr;
  MorselSource* morsels = nullptr;
};

/// A loaded query library. Owns the dlopen handle and the on-disk artifacts;
/// both are released on destruction. Hold it through a shared_ptr when the
/// code may still be executing on another thread: dlclose while a query is
/// mid-flight unmaps its text segment.
class JitModule {
 public:
  /// Query entry ABI: one opaque pointer to the module's own lb2_exec_ctx.
  using QueryFn = int64_t (*)(void* ctx);

  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  /// Resolves the query entry point; aborts if missing.
  QueryFn entry(const std::string& name) const {
    return reinterpret_cast<QueryFn>(symbol(name));
  }

  /// Resolves an exported symbol (function or object); aborts if missing.
  void* symbol(const std::string& name) const;

  /// Non-aborting lookup for optional exports (e.g. the profiling counters
  /// a module only has when staged with profiling on); null when absent.
  void* TrySymbol(const std::string& name) const;

  /// Typed symbol resolution: `sym<int64_t(void**, QueryOut*)>("f")` for a
  /// function, `sym<const int64_t>("lb2_ctx_bytes")` for an object.
  template <typename T>
  T* sym(const std::string& name) const {
    return reinterpret_cast<T*>(symbol(name));
  }

  /// Size of the module's lb2_exec_ctx (the exported `lb2_ctx_bytes`).
  int64_t ctx_bytes() const { return *sym<const int64_t>("lb2_ctx_bytes"); }

  /// Generated C source (kept for inspection / the examples).
  const std::string& source() const { return source_; }

  /// Time spent emitting C text, and time spent in the external compiler.
  double codegen_ms() const { return codegen_ms_; }
  double compile_ms() const { return compile_ms_; }

  const std::string& c_path() const { return c_path_; }
  const std::string& so_path() const { return so_path_; }

  /// Size of the loaded shared object on disk (cache byte accounting).
  int64_t so_bytes() const { return so_bytes_; }

 private:
  friend class Jit;
  JitModule() = default;

  void* handle_ = nullptr;
  std::string source_;
  std::string c_path_;
  std::string so_path_;
  // False for modules loaded from a persistent artifact store: the .so
  // belongs to the store (its own eviction deletes it), not this module.
  bool owns_files_ = true;
  double codegen_ms_ = 0.0;
  double compile_ms_ = 0.0;
  int64_t so_bytes_ = 0;
};

/// Front door: compiles a CModule with the system C compiler.
class Jit {
 public:
  /// Compiler command; overridable via the LB2_CC environment variable.
  static std::string CompilerCommand();

  /// Flags always appended to the compile command for generated TUs:
  /// `-fopenmp-simd` (honor the prelude's `omp simd` hints without the
  /// OpenMP runtime) plus `-mavx2` when this host's CPU supports AVX2 —
  /// the prelude's explicit AVX2 kernels light up only then. Folded into
  /// CompilerIdentity() so shared artifact directories never serve an
  /// AVX2 object to a host that cannot execute it.
  static std::string CodegenFlags();

  /// Identity string for the current compiler command: the resolved binary
  /// path plus the first line of `--version` output. Persistent artifact
  /// caches fold this into their keys so a shared object built by one
  /// compiler is never reused under another. Cached per distinct command
  /// (LB2_CC changes are picked up).
  static std::string CompilerIdentity();

  /// dlopens an already-compiled artifact at `so_path` — the persistent-
  /// cache fast path: no codegen emission, no external compiler. Verifies
  /// the reentrant-entry ABI (`lb2_query` + `lb2_ctx_bytes` exports) and
  /// returns nullptr with *error filled on any failure. The module does
  /// NOT own (and never deletes) the file; `source` is retained for
  /// inspection just like a compiled module's.
  static std::unique_ptr<JitModule> TryLoad(const std::string& so_path,
                                            const std::string& source,
                                            std::string* error);

  /// Emits, compiles (-O2 by default) and loads `module`. `tag` names the
  /// temp files for debuggability. Returns nullptr on a compiler or loader
  /// failure with the captured diagnostics in *error (the generated source
  /// is kept on disk for inspection) — recoverable, so a serving layer can
  /// degrade to the interpreted path instead of dying.
  static std::unique_ptr<JitModule> TryCompile(const CModule& module,
                                               const std::string& tag,
                                               const std::string& extra_flags,
                                               std::string* error);

  /// Same pipeline for an already-rendered C translation unit (used by the
  /// template-expansion compiler, which produces raw text).
  static std::unique_ptr<JitModule> TryCompileSource(
      const std::string& source, const std::string& tag,
      const std::string& extra_flags, std::string* error);

  /// Aborting wrappers around the Try* variants, for callers that treat a
  /// compile error in generated code as a bug in this library (tests,
  /// benchmarks, the one-shot examples).
  static std::unique_ptr<JitModule> Compile(const CModule& module,
                                            const std::string& tag,
                                            const std::string& extra_flags = "");
  static std::unique_ptr<JitModule> CompileSource(const std::string& source,
                                                  const std::string& tag,
                                                  const std::string& extra_flags = "");
};

}  // namespace lb2::stage

#endif  // LB2_STAGE_JIT_H_
