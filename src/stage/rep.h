// Rep<T>: the staged (symbolic) value type — the paper's `MyInt` / LMS's
// `Rep[T]` realized with C++ operator overloading.
//
// A Rep<T> names a value of C type T in the *generated* program. Operating
// on Reps emits C statements into the active CodegenContext and returns a
// Rep naming the result; constants fold at generation time, so expressions
// whose inputs are static never reach the generated code. This file is the
// entire "staging framework" the engine builds on.
#ifndef LB2_STAGE_REP_H_
#define LB2_STAGE_REP_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "stage/builder.h"
#include "util/check.h"
#include "util/str.h"

namespace lb2::stage {

// ---------------------------------------------------------------------------
// C type names for the supported staged types.
// ---------------------------------------------------------------------------

template <typename T>
struct CTypeName;

template <> struct CTypeName<void> {
  static std::string Str() { return "void"; }
};
template <> struct CTypeName<bool> {
  static std::string Str() { return "bool"; }
};
template <> struct CTypeName<char> {
  static std::string Str() { return "char"; }
};
template <> struct CTypeName<uint8_t> {
  static std::string Str() { return "uint8_t"; }
};
template <> struct CTypeName<int32_t> {
  static std::string Str() { return "int32_t"; }
};
template <> struct CTypeName<int64_t> {
  static std::string Str() { return "int64_t"; }
};
template <> struct CTypeName<double> {
  static std::string Str() { return "double"; }
};
template <typename T> struct CTypeName<T*> {
  static std::string Str() { return CTypeName<T>::Str() + "*"; }
};
template <typename T> struct CTypeName<const T> {
  static std::string Str() { return "const " + CTypeName<T>::Str(); }
};

template <typename T>
std::string CType() {
  return CTypeName<T>::Str();
}

// ---------------------------------------------------------------------------
// Literal rendering.
// ---------------------------------------------------------------------------

/// Renders a host constant as a C literal of the matching type.
template <typename T>
std::string Lit(T v) {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_same_v<T, double>) {
    std::string s = StrPrintf("%.17g", v);
    // Ensure the literal parses as a double, not an int.
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return std::to_string(v) + "LL";
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(v);
  } else {
    static_assert(!sizeof(T*), "no literal form for this staged type");
  }
}

/// Escapes a host string as a C string literal (quotes included).
inline std::string CStringLit(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += "\"";
  return out;
}

// ---------------------------------------------------------------------------
// Rep<T>
// ---------------------------------------------------------------------------

template <typename T>
class Rep {
 public:
  /// Default-constructed Reps are only placeholders; using one in generated
  /// code is a bug caught by the sentinel ref.
  Rep() : ref_("LB2_UNDEF") {}

  /// Implicit lift of a host constant into the generated program. Constants
  /// stay symbolic (no code emitted) and participate in folding.
  Rep(T v) : ref_(Lit<T>(v)), is_const_(true), const_val_(v) {}  // NOLINT

  /// Wraps an existing C expression/variable name.
  static Rep FromRef(std::string ref) {
    Rep r;
    r.ref_ = std::move(ref);
    return r;
  }

  const std::string& ref() const { return ref_; }
  bool is_const() const { return is_const_; }
  T const_value() const {
    LB2_CHECK(is_const_);
    return const_val_;
  }

 private:
  std::string ref_;
  bool is_const_ = false;
  T const_val_{};
};

// Pointer-typed Reps carry no constant payload.
template <typename T>
class Rep<T*> {
 public:
  Rep() : ref_("LB2_UNDEF") {}
  static Rep FromRef(std::string ref) {
    Rep r;
    r.ref_ = std::move(ref);
    return r;
  }
  /// The generated NULL pointer.
  static Rep Null() { return FromRef("((" + CType<T*>() + ")0)"); }
  const std::string& ref() const { return ref_; }
  bool is_const() const { return false; }

 private:
  std::string ref_;
};

/// Binds a C expression to a fresh variable of type T and returns its Rep.
template <typename T>
Rep<T> Bind(const std::string& expr) {
  auto* ctx = CodegenContext::Current();
  std::string name = ctx->Fresh();
  ctx->EmitLine(CType<T>() + " " + name + " = " + expr + ";");
  return Rep<T>::FromRef(name);
}

/// Emits a statement (no value).
inline void Stmt(const std::string& line) {
  CodegenContext::Current()->EmitLine(line);
}

// ---------------------------------------------------------------------------
// Operators. Each either folds (both sides constant) or emits one binding.
// ---------------------------------------------------------------------------

template <typename R, typename T, typename F>
Rep<R> BinOp(const char* op, const Rep<T>& a, const Rep<T>& b, F fold,
             bool fold_ok = true) {
  if (fold_ok && a.is_const() && b.is_const()) {
    return Rep<R>(fold(a.const_value(), b.const_value()));
  }
  return Bind<R>("(" + a.ref() + " " + op + " " + b.ref() + ")");
}

#define LB2_ARITH_OP(op)                                                     \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<T> operator op(const Rep<T>& a, const Rep<T>& b) {                    \
    return BinOp<T>(#op, a, b,                                               \
                    [](T x, T y) { return static_cast<T>(x op y); });        \
  }                                                                          \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<T> operator op(const Rep<T>& a, std::type_identity_t<T> b) { return a op Rep<T>(b); }        \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<T> operator op(std::type_identity_t<T> a, const Rep<T>& b) { return Rep<T>(a) op b; }

LB2_ARITH_OP(+)
LB2_ARITH_OP(-)
LB2_ARITH_OP(*)
#undef LB2_ARITH_OP

// Division and modulo never fold a constant zero divisor.
template <typename T>
  requires std::is_arithmetic_v<T>
Rep<T> operator/(const Rep<T>& a, const Rep<T>& b) {
  bool safe = !b.is_const() || b.const_value() != T{};
  return BinOp<T>("/", a, b, [](T x, T y) { return static_cast<T>(x / y); },
                  safe && a.is_const() && b.is_const());
}
template <typename T>
  requires std::is_arithmetic_v<T>
Rep<T> operator/(const Rep<T>& a, std::type_identity_t<T> b) { return a / Rep<T>(b); }
template <typename T>
  requires std::is_arithmetic_v<T>
Rep<T> operator/(std::type_identity_t<T> a, const Rep<T>& b) { return Rep<T>(a) / b; }

template <typename T>
  requires std::is_integral_v<T>
Rep<T> operator%(const Rep<T>& a, const Rep<T>& b) {
  bool safe = !b.is_const() || b.const_value() != T{};
  return BinOp<T>("%", a, b, [](T x, T y) { return static_cast<T>(x % y); },
                  safe && a.is_const() && b.is_const());
}
template <typename T>
  requires std::is_integral_v<T>
Rep<T> operator%(const Rep<T>& a, std::type_identity_t<T> b) { return a % Rep<T>(b); }

template <typename T>
  requires std::is_integral_v<T>
Rep<T> operator&(const Rep<T>& a, const Rep<T>& b) {
  return BinOp<T>("&", a, b, [](T x, T y) { return static_cast<T>(x & y); });
}
template <typename T>
  requires std::is_integral_v<T>
Rep<T> operator&(const Rep<T>& a, std::type_identity_t<T> b) { return a & Rep<T>(b); }

#define LB2_CMP_OP(op)                                                       \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<bool> operator op(const Rep<T>& a, const Rep<T>& b) {                 \
    return BinOp<bool>(#op, a, b, [](T x, T y) { return x op y; });          \
  }                                                                          \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<bool> operator op(const Rep<T>& a, std::type_identity_t<T> b) { return a op Rep<T>(b); }     \
  template <typename T>                                                      \
    requires std::is_arithmetic_v<T>                                         \
  Rep<bool> operator op(std::type_identity_t<T> a, const Rep<T>& b) { return Rep<T>(a) op b; }

LB2_CMP_OP(==)
LB2_CMP_OP(!=)
LB2_CMP_OP(<)
LB2_CMP_OP(<=)
LB2_CMP_OP(>)
LB2_CMP_OP(>=)
#undef LB2_CMP_OP

// Logical connectives. No short-circuiting: operands are already staged.
inline Rep<bool> operator&&(const Rep<bool>& a, const Rep<bool>& b) {
  if (a.is_const()) return a.const_value() ? b : Rep<bool>(false);
  if (b.is_const()) return b.const_value() ? a : Rep<bool>(false);
  return Bind<bool>("(" + a.ref() + " && " + b.ref() + ")");
}
inline Rep<bool> operator||(const Rep<bool>& a, const Rep<bool>& b) {
  if (a.is_const()) return a.const_value() ? Rep<bool>(true) : b;
  if (b.is_const()) return b.const_value() ? Rep<bool>(true) : a;
  return Bind<bool>("(" + a.ref() + " || " + b.ref() + ")");
}
inline Rep<bool> operator!(const Rep<bool>& a) {
  if (a.is_const()) return Rep<bool>(!a.const_value());
  return Bind<bool>("(!" + a.ref() + ")");
}

/// Generated-type cast.
template <typename To, typename From>
Rep<To> CastRep(const Rep<From>& v) {
  if constexpr (std::is_arithmetic_v<To> && std::is_arithmetic_v<From>) {
    if (v.is_const()) return Rep<To>(static_cast<To>(v.const_value()));
  }
  return Bind<To>("((" + CType<To>() + ")" + v.ref() + ")");
}

// ---------------------------------------------------------------------------
// Mutable staged locals.
// ---------------------------------------------------------------------------

/// A named mutable variable in the generated program.
template <typename T>
class Var {
 public:
  explicit Var(const Rep<T>& init) {
    auto* ctx = CodegenContext::Current();
    name_ = ctx->Fresh("v");
    ctx->EmitLine(CType<T>() + " " + name_ + " = " + init.ref() + ";");
  }
  Var() : Var(Rep<T>::FromRef("{0}")) {}

  Rep<T> Get() const { return Rep<T>::FromRef(name_); }
  operator Rep<T>() const { return Get(); }  // NOLINT: deliberate sugar

  void Set(const Rep<T>& v) { Stmt(name_ + " = " + v.ref() + ";"); }
  void Add(const Rep<T>& v) { Stmt(name_ + " += " + v.ref() + ";"); }
  void Inc() { Stmt(name_ + "++;"); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

// ---------------------------------------------------------------------------
// Memory: staged arrays via raw pointers (exactly what LB2 generates).
// ---------------------------------------------------------------------------

template <typename T>
Rep<T*> Malloc(const Rep<int64_t>& n) {
  return Bind<T*>("(" + CType<T*>() + ")malloc((size_t)(" + n.ref() +
                  ") * sizeof(" + CType<T>() + "))");
}

template <typename T>
Rep<T*> Calloc(const Rep<int64_t>& n) {
  return Bind<T*>("(" + CType<T*>() + ")calloc((size_t)(" + n.ref() +
                  "), sizeof(" + CType<T>() + "))");
}

template <typename T>
void Free(const Rep<T*>& p) {
  Stmt("free((void*)" + p.ref() + ");");
}

template <typename T>
Rep<T> Load(const Rep<T*>& base, const Rep<int64_t>& idx) {
  return Bind<T>(base.ref() + "[" + idx.ref() + "]");
}

template <typename T>
void Store(const Rep<T*>& base, const Rep<int64_t>& idx, const Rep<T>& v) {
  Stmt(base.ref() + "[" + idx.ref() + "] = " + v.ref() + ";");
}

template <typename T>
Rep<T*> PtrOffset(const Rep<T*>& base, const Rep<int64_t>& idx) {
  return Bind<T*>("(" + base.ref() + " + " + idx.ref() + ")");
}

// ---------------------------------------------------------------------------
// Calls into prelude/helper functions.
// ---------------------------------------------------------------------------

inline void JoinArgRefs(std::string*) {}
template <typename A, typename... Rest>
void JoinArgRefs(std::string* out, const A& a, const Rest&... rest) {
  if (!out->empty()) *out += ", ";
  *out += a.ref();
  JoinArgRefs(out, rest...);
}

template <typename R, typename... Args>
Rep<R> Call(const std::string& fn, const Args&... args) {
  std::string arglist;
  JoinArgRefs(&arglist, args...);
  return Bind<R>(fn + "(" + arglist + ")");
}

template <typename... Args>
void CallVoid(const std::string& fn, const Args&... args) {
  std::string arglist;
  JoinArgRefs(&arglist, args...);
  Stmt(fn + "(" + arglist + ");");
}

}  // namespace lb2::stage

#endif  // LB2_STAGE_REP_H_
