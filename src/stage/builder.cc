#include "stage/builder.h"

namespace lb2::stage {

thread_local CodegenContext* CodegenContext::current_ = nullptr;

}  // namespace lb2::stage
