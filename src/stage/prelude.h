// The C runtime prelude embedded into every generated translation unit.
//
// These are the few "library" pieces the generated code calls into rather
// than inlining: the growable output buffer, string helpers (hashing,
// comparison, LIKE), and timing. Everything data-structure-shaped (hash
// tables, buffers, indexes) is specialized away at generation time and never
// appears here — that is the point of the paper.
#ifndef LB2_STAGE_PRELUDE_H_
#define LB2_STAGE_PRELUDE_H_

namespace lb2::stage {

inline constexpr const char* kCPrelude = R"PRELUDE(
#define _GNU_SOURCE /* qsort_r */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <stdint.h>
#include <stdbool.h>
#include <pthread.h>
#include <sys/time.h>

typedef struct {
  char* data;
  int64_t len;
  int64_t cap;
  int64_t rows;
  double exec_ms;
} lb2_out;

/* One bound query parameter (a literal hoisted out of the plan so the
   same compiled artifact serves every literal of a query shape). The host
   mirror is stage::ParamSlot; layouts must match. Ints, dates, and bools
   ride in i64; doubles keep their exact bit pattern in f64; strings are
   (ptr, len) views into host-owned storage that outlives the run. */
typedef struct {
  int64_t i64;
  double f64;
  const char* sp;
  int32_t sn;
} lb2_param;

/* Per-worker argument for generated parallel regions: the execution
   context of the run that spawned the worker plus the worker's lane id.
   Every run owns a private lb2_exec_ctx, so one loaded module may execute
   on any number of host threads concurrently. */
typedef struct {
  void* ctx;
  int64_t tid;
} lb2_thread_arg;

/* Shared morsel dispenser for morsel-driven pipelines. When non-null in the
   execution context, driver loops claim fixed-size row ranges (morsels) via
   an atomic fetch-add on `next` instead of splitting the scan statically per
   thread — idle workers steal the next morsel, and an interpreted prefix and
   a compiled suffix of the same query can drain one dispenser across a
   mid-query switch. `seed` optionally carries partial aggregate state
   exported by an interpreted prefix (seed_rows flat i64 rows; doubles as bit
   patterns, strings as (ptr,len) slot pairs into host-owned storage), folded
   in before the fill loop. `claims`, when non-null, counts executions per
   morsel so tests can assert exactly-once claiming. The host mirror is
   stage::MorselSource; layouts must match. */
typedef struct {
  volatile long long next;
  long long morsel_rows;
  long long seed_rows;
  const long long* seed;
  volatile long long* claims;
  long long claims_len;
} lb2_morsel_source;

static void lb2_out_reserve(lb2_out* o, int64_t extra) {
  if (o->len + extra <= o->cap) return;
  int64_t cap = o->cap ? o->cap * 2 : 4096;
  while (cap < o->len + extra) cap *= 2;
  o->data = (char*)realloc(o->data, (size_t)cap);
  o->cap = cap;
}

static void lb2_out_str(lb2_out* o, const char* s, int64_t n) {
  lb2_out_reserve(o, n);
  memcpy(o->data + o->len, s, (size_t)n);
  o->len += n;
}

static void lb2_out_cstr(lb2_out* o, const char* s) {
  lb2_out_str(o, s, (int64_t)strlen(s));
}

static void lb2_out_i64(lb2_out* o, int64_t v) {
  char buf[32];
  int n = snprintf(buf, sizeof(buf), "%lld", (long long)v);
  lb2_out_str(o, buf, n);
}

static void lb2_out_f64(lb2_out* o, double v) {
  char buf[64];
  int n = snprintf(buf, sizeof(buf), "%.4f", v);
  lb2_out_str(o, buf, n);
}

static void lb2_out_date(lb2_out* o, int64_t yyyymmdd) {
  char buf[16];
  int n = snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                   (int)(yyyymmdd / 10000), (int)((yyyymmdd / 100) % 100),
                   (int)(yyyymmdd % 100));
  lb2_out_str(o, buf, n);
}

static void lb2_out_char(lb2_out* o, char c) { lb2_out_str(o, &c, 1); }

static int64_t lb2_hash_i64(int64_t v) {
  uint64_t z = (uint64_t)v * 0x9e3779b97f4a7c15ULL;
  z ^= z >> 32;
  return (int64_t)z;
}

static int64_t lb2_hash_str(const char* s, int32_t n) {
  uint64_t h = 5381;
  for (int32_t i = 0; i < n; i++) h = ((h << 5) + h) + (uint8_t)s[i];
  return (int64_t)h;
}

static int64_t lb2_hash_combine(int64_t a, int64_t b) {
  uint64_t h = (uint64_t)a;
  h ^= (uint64_t)b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return (int64_t)h;
}

static bool lb2_str_eq(const char* a, int32_t an, const char* b, int32_t bn) {
  return an == bn && memcmp(a, b, (size_t)an) == 0;
}

static int32_t lb2_str_cmp(const char* a, int32_t an, const char* b,
                           int32_t bn) {
  int32_t n = an < bn ? an : bn;
  int c = memcmp(a, b, (size_t)n);
  if (c != 0) return c < 0 ? -1 : 1;
  return an == bn ? 0 : (an < bn ? -1 : 1);
}

static bool lb2_starts_with(const char* s, int32_t n, const char* p,
                            int32_t pn) {
  return n >= pn && memcmp(s, p, (size_t)pn) == 0;
}

static bool lb2_ends_with(const char* s, int32_t n, const char* p,
                          int32_t pn) {
  return n >= pn && memcmp(s + (n - pn), p, (size_t)pn) == 0;
}

static bool lb2_contains(const char* s, int32_t n, const char* p, int32_t pn) {
  if (pn == 0) return true;
  for (int32_t i = 0; i + pn <= n; i++) {
    if (s[i] == p[0] && memcmp(s + i, p, (size_t)pn) == 0) return true;
  }
  return false;
}

/* SQL LIKE with %% and _ wildcards (iterative backtracking matcher). */
static bool lb2_like(const char* s, int32_t n, const char* p, int32_t pn) {
  int32_t si = 0, pi = 0, star_p = -1, star_s = 0;
  while (si < n) {
    if (pi < pn && (p[pi] == '_' || p[pi] == s[si])) {
      si++; pi++;
    } else if (pi < pn && p[pi] == '%') {
      star_p = pi++; star_s = si;
    } else if (star_p >= 0) {
      pi = star_p + 1; si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < pn && p[pi] == '%') pi++;
  return pi == pn;
}

static int64_t lb2_d2i(double v) {
  int64_t out;
  memcpy(&out, &v, sizeof(out));
  return out;
}

static double lb2_i2d(int64_t v) {
  double out;
  memcpy(&out, &v, sizeof(out));
  return out;
}

static double lb2_now_ms(void) {
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return (double)tv.tv_sec * 1000.0 + (double)tv.tv_usec / 1000.0;
}

/* Batch-at-a-time filter kernels for the vectorized codegen flavor. The
   generated code calls these with restrict-qualified column pointers
   (already offset to the batch base), a 0/1 byte flag array, and a
   selection vector of batch-relative row offsets. Scalar loops carry
   `omp simd` hints (-fopenmp-simd); the hottest int64/double comparisons
   take an explicit AVX2 path when the JIT compiles with -mavx2.
   Comparison semantics match the scalar expression evaluator exactly,
   including NaN: ordered compares are false, != is true. */

#if defined(__AVX2__)
#include <immintrin.h>
#define LB2_VFLAG_I64_AVX2(MASK)                                         \
  {                                                                      \
    __m256i vr = _mm256_set1_epi64x(rhs);                                \
    for (; i + 4 <= n; i += 4) {                                         \
      __m256i v = _mm256_loadu_si256((const __m256i*)(p + i));           \
      int m = (MASK);                                                    \
      flags[i] = (uint8_t)(m & 1);                                       \
      flags[i + 1] = (uint8_t)((m >> 1) & 1);                            \
      flags[i + 2] = (uint8_t)((m >> 2) & 1);                            \
      flags[i + 3] = (uint8_t)((m >> 3) & 1);                            \
    }                                                                    \
  }
#define LB2_VFLAG_F64_AVX2(IMM)                                          \
  {                                                                      \
    __m256d vr = _mm256_set1_pd(rhs);                                    \
    for (; i + 4 <= n; i += 4) {                                         \
      int m = _mm256_movemask_pd(                                        \
          _mm256_cmp_pd(_mm256_loadu_pd(p + i), vr, IMM));               \
      flags[i] = (uint8_t)(m & 1);                                       \
      flags[i + 1] = (uint8_t)((m >> 1) & 1);                            \
      flags[i + 2] = (uint8_t)((m >> 2) & 1);                            \
      flags[i + 3] = (uint8_t)((m >> 3) & 1);                            \
    }                                                                    \
  }
#else
#define LB2_VFLAG_I64_AVX2(MASK)
#define LB2_VFLAG_F64_AVX2(IMM)
#endif

#define LB2_VFLAG_I64(NAME, OP, MASK)                                    \
static void NAME(const int64_t* restrict p, int64_t n, int64_t rhs,      \
                 uint8_t* restrict flags) {                              \
  int64_t i = 0;                                                         \
  LB2_VFLAG_I64_AVX2(MASK)                                               \
  /* omp simd needs a canonical loop: tail restarts from the AVX2 cut */ \
  _Pragma("omp simd")                                                    \
  for (int64_t j = i; j < n; j++) flags[j] = (uint8_t)(p[j] OP rhs);     \
}

#define LB2_VFLAG_I32(NAME, OP)                                          \
static void NAME(const int32_t* restrict p, int64_t n, int64_t rhs,      \
                 uint8_t* restrict flags) {                              \
  _Pragma("omp simd")                                                    \
  for (int64_t i = 0; i < n; i++)                                        \
    flags[i] = (uint8_t)((int64_t)p[i] OP rhs);                          \
}

#define LB2_VFLAG_F64(NAME, OP, IMM)                                     \
static void NAME(const double* restrict p, int64_t n, double rhs,        \
                 uint8_t* restrict flags) {                              \
  int64_t i = 0;                                                         \
  LB2_VFLAG_F64_AVX2(IMM)                                                \
  _Pragma("omp simd")                                                    \
  for (int64_t j = i; j < n; j++) flags[j] = (uint8_t)(p[j] OP rhs);     \
}

LB2_VFLAG_I64(lb2_vflag_i64_lt, <,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vr, v))))
LB2_VFLAG_I64(lb2_vflag_i64_le, <=,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vr))) ^ 15)
LB2_VFLAG_I64(lb2_vflag_i64_gt, >,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vr))))
LB2_VFLAG_I64(lb2_vflag_i64_ge, >=,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vr, v))) ^ 15)
LB2_VFLAG_I64(lb2_vflag_i64_eq, ==,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vr))))
LB2_VFLAG_I64(lb2_vflag_i64_ne, !=,
  _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vr))) ^ 15)

LB2_VFLAG_I32(lb2_vflag_i32_lt, <)
LB2_VFLAG_I32(lb2_vflag_i32_le, <=)
LB2_VFLAG_I32(lb2_vflag_i32_gt, >)
LB2_VFLAG_I32(lb2_vflag_i32_ge, >=)
LB2_VFLAG_I32(lb2_vflag_i32_eq, ==)
LB2_VFLAG_I32(lb2_vflag_i32_ne, !=)

LB2_VFLAG_F64(lb2_vflag_f64_lt, <, _CMP_LT_OQ)
LB2_VFLAG_F64(lb2_vflag_f64_le, <=, _CMP_LE_OQ)
LB2_VFLAG_F64(lb2_vflag_f64_gt, >, _CMP_GT_OQ)
LB2_VFLAG_F64(lb2_vflag_f64_ge, >=, _CMP_GE_OQ)
LB2_VFLAG_F64(lb2_vflag_f64_eq, ==, _CMP_EQ_OQ)
LB2_VFLAG_F64(lb2_vflag_f64_ne, !=, _CMP_NEQ_UQ)

/* Turns a flag batch into a selection vector of batch-relative offsets
   (branch-free append). Returns the selected count. */
static int64_t lb2_vcompact(const uint8_t* restrict flags, int64_t n,
                            int32_t* restrict sel) {
  int64_t cnt = 0;
  for (int64_t i = 0; i < n; i++) {
    sel[cnt] = (int32_t)i;
    cnt += flags[i];
  }
  return cnt;
}

/* Refines a selection vector in place against one more conjunct
   (branch-free compaction). Returns the surviving count. */
#define LB2_VREFINE_I64(NAME, OP)                                        \
static int64_t NAME(const int64_t* restrict p, int32_t* restrict sel,    \
                    int64_t cnt, int64_t rhs) {                          \
  int64_t out = 0;                                                       \
  for (int64_t k = 0; k < cnt; k++) {                                    \
    int32_t j = sel[k];                                                  \
    sel[out] = j;                                                        \
    out += (int64_t)(p[j] OP rhs);                                       \
  }                                                                      \
  return out;                                                            \
}

#define LB2_VREFINE_I32(NAME, OP)                                        \
static int64_t NAME(const int32_t* restrict p, int32_t* restrict sel,    \
                    int64_t cnt, int64_t rhs) {                          \
  int64_t out = 0;                                                       \
  for (int64_t k = 0; k < cnt; k++) {                                    \
    int32_t j = sel[k];                                                  \
    sel[out] = j;                                                        \
    out += (int64_t)((int64_t)p[j] OP rhs);                              \
  }                                                                      \
  return out;                                                            \
}

#define LB2_VREFINE_F64(NAME, OP)                                        \
static int64_t NAME(const double* restrict p, int32_t* restrict sel,     \
                    int64_t cnt, double rhs) {                           \
  int64_t out = 0;                                                       \
  for (int64_t k = 0; k < cnt; k++) {                                    \
    int32_t j = sel[k];                                                  \
    sel[out] = j;                                                        \
    out += (int64_t)(p[j] OP rhs);                                       \
  }                                                                      \
  return out;                                                            \
}

LB2_VREFINE_I64(lb2_vrefine_i64_lt, <)
LB2_VREFINE_I64(lb2_vrefine_i64_le, <=)
LB2_VREFINE_I64(lb2_vrefine_i64_gt, >)
LB2_VREFINE_I64(lb2_vrefine_i64_ge, >=)
LB2_VREFINE_I64(lb2_vrefine_i64_eq, ==)
LB2_VREFINE_I64(lb2_vrefine_i64_ne, !=)

LB2_VREFINE_I32(lb2_vrefine_i32_lt, <)
LB2_VREFINE_I32(lb2_vrefine_i32_le, <=)
LB2_VREFINE_I32(lb2_vrefine_i32_gt, >)
LB2_VREFINE_I32(lb2_vrefine_i32_ge, >=)
LB2_VREFINE_I32(lb2_vrefine_i32_eq, ==)
LB2_VREFINE_I32(lb2_vrefine_i32_ne, !=)

LB2_VREFINE_F64(lb2_vrefine_f64_lt, <)
LB2_VREFINE_F64(lb2_vrefine_f64_le, <=)
LB2_VREFINE_F64(lb2_vrefine_f64_gt, >)
LB2_VREFINE_F64(lb2_vrefine_f64_ge, >=)
LB2_VREFINE_F64(lb2_vrefine_f64_eq, ==)
LB2_VREFINE_F64(lb2_vrefine_f64_ne, !=)

#undef LB2_VFLAG_I64_AVX2
#undef LB2_VFLAG_F64_AVX2
#undef LB2_VFLAG_I64
#undef LB2_VFLAG_I32
#undef LB2_VFLAG_F64
#undef LB2_VREFINE_I64
#undef LB2_VREFINE_I32
#undef LB2_VREFINE_F64
)PRELUDE";

}  // namespace lb2::stage

#endif  // LB2_STAGE_PRELUDE_H_
