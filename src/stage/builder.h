// CodegenContext: the mutable state threaded through a staged evaluation.
//
// Staged operations (rep.h, control.h) emit C statements into the context's
// current function as a side effect of running, mirroring the paper's
// `println`-based MyInt example, with fresh-name generation and scoped
// indentation for readable output. A thread-local "current context" lets
// overloaded operators emit without an explicit context parameter.
#ifndef LB2_STAGE_BUILDER_H_
#define LB2_STAGE_BUILDER_H_

#include <string>
#include <vector>

#include "stage/ir.h"
#include "util/check.h"

namespace lb2::stage {

class CodegenContext {
 public:
  CodegenContext() = default;
  CodegenContext(const CodegenContext&) = delete;
  CodegenContext& operator=(const CodegenContext&) = delete;

  /// Returns a fresh C identifier ("x0", "x1", ...).
  std::string Fresh(const char* prefix = "x") {
    return std::string(prefix) + std::to_string(counter_++);
  }

  /// Emits one statement line into the current function at current indent.
  void EmitLine(const std::string& line) {
    LB2_CHECK_MSG(!fn_stack_.empty(), "EmitLine outside of a function");
    fn_stack_.back()->body.push_back(Indent() + line);
  }

  /// Emits a `/* ... */` comment line (useful landmarks in generated code).
  void Comment(const std::string& text) { EmitLine("/* " + text + " */"); }

  /// Opens a block: emits `head {` and increases indentation.
  void Open(const std::string& head) {
    EmitLine(head + " {");
    ++indent_;
  }

  /// Closes the innermost block.
  void Close(const std::string& tail = "}") {
    LB2_CHECK(indent_ > 0);
    --indent_;
    EmitLine(tail);
  }

  /// Transitions between sibling blocks, e.g. `} else {`: the line is
  /// emitted at the enclosing indent, then the block level is restored.
  void Reopen(const std::string& line) {
    LB2_CHECK(indent_ > 0);
    --indent_;
    EmitLine(line);
    ++indent_;
  }

  /// Starts a new top-level C function; statements go there until
  /// EndFunction. Functions may be started while another is in progress
  /// (e.g. sort comparators, thread entry points); emission resumes in the
  /// enclosing function afterwards.
  CFunction* BeginFunction(
      const std::string& return_type, const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& params,
      bool is_static = true) {
    CFunction* f = module_.AddFunction();
    f->return_type = return_type;
    f->name = name;
    f->params = params;
    f->is_static = is_static;
    fn_stack_.push_back(f);
    indent_stack_.push_back(indent_);
    indent_ = 1;
    return f;
  }

  void EndFunction() {
    LB2_CHECK(!fn_stack_.empty());
    fn_stack_.pop_back();
    indent_ = indent_stack_.back();
    indent_stack_.pop_back();
  }

  /// Adds a file-scope declaration, e.g. `static const int64_t k = 3;`.
  /// Mutable state must go through DeclareCtxField instead — the compilers
  /// assert the emitted TU has no writable file-scope definitions.
  void DeclareGlobal(const std::string& decl) { module_.AddGlobal(decl); }

  /// Registers a per-run scratch field on the module's `lb2_exec_ctx` and
  /// returns the expression that names it, e.g. `lb2_ctx->g3`. Every
  /// generated function that touches such state takes (or rebinds) a local
  /// `lb2_exec_ctx* lb2_ctx`, so the returned ref is valid anywhere.
  std::string DeclareCtxField(const std::string& type,
                              const std::string& name) {
    module_.AddCtxField(type, name);
    return "lb2_ctx->" + name;
  }

  /// Adds a struct definition at file scope.
  void DeclareStruct(const std::string& def) { module_.AddStruct(def); }

  CModule& module() { return module_; }

  /// The context staged operators currently emit into. Set via
  /// CodegenScope; aborts if none is active.
  static CodegenContext* Current() {
    LB2_CHECK_MSG(current_ != nullptr, "no active CodegenContext");
    return current_;
  }

  static bool HasCurrent() { return current_ != nullptr; }

 private:
  friend class CodegenScope;

  std::string Indent() const { return std::string(2 * indent_, ' '); }

  static thread_local CodegenContext* current_;

  CModule module_;
  std::vector<CFunction*> fn_stack_;
  std::vector<int> indent_stack_;
  int indent_ = 1;
  int counter_ = 0;
};

/// RAII activation of a CodegenContext for the staged operators.
class CodegenScope {
 public:
  explicit CodegenScope(CodegenContext* ctx) : prev_(CodegenContext::current_) {
    CodegenContext::current_ = ctx;
  }
  ~CodegenScope() { CodegenContext::current_ = prev_; }
  CodegenScope(const CodegenScope&) = delete;
  CodegenScope& operator=(const CodegenScope&) = delete;

 private:
  CodegenContext* prev_;
};

}  // namespace lb2::stage

#endif  // LB2_STAGE_BUILDER_H_
