// Staged control flow: overloaded `if`/`while`/`for` combinators over
// Rep<bool>, the staged analogue of LMS's control-flow virtualization.
//
// Crucially, a *constant* condition is decided at generation time and only
// the taken branch is staged — this is where interpreter dispatch on the
// (static) query disappears from the generated code, i.e. the first
// Futamura projection at work.
#ifndef LB2_STAGE_CONTROL_H_
#define LB2_STAGE_CONTROL_H_

#include <functional>

#include "stage/rep.h"

namespace lb2::stage {

/// if (c) { then() }
inline void If(const Rep<bool>& c, const std::function<void()>& then) {
  if (c.is_const()) {
    if (c.const_value()) then();
    return;
  }
  auto* ctx = CodegenContext::Current();
  ctx->Open("if (" + c.ref() + ")");
  then();
  ctx->Close();
}

/// if (c) { then() } else { els() }
inline void IfElse(const Rep<bool>& c, const std::function<void()>& then,
                   const std::function<void()>& els) {
  if (c.is_const()) {
    if (c.const_value()) {
      then();
    } else {
      els();
    }
    return;
  }
  auto* ctx = CodegenContext::Current();
  ctx->Open("if (" + c.ref() + ")");
  then();
  ctx->Reopen("} else {");
  els();
  ctx->Close();
}

/// Value-producing conditional: T result = c ? then() : els(), staged.
template <typename T>
Rep<T> IfVal(const Rep<bool>& c, const std::function<Rep<T>()>& then,
             const std::function<Rep<T>()>& els) {
  if (c.is_const()) return c.const_value() ? then() : els();
  Var<T> out;
  IfElse(
      c, [&] { out.Set(then()); }, [&] { out.Set(els()); });
  return out.Get();
}

/// Cheap ternary when both sides are already-computed values.
template <typename T>
Rep<T> Select(const Rep<bool>& c, const Rep<T>& a, const Rep<T>& b) {
  if (c.is_const()) return c.const_value() ? a : b;
  return Bind<T>("(" + c.ref() + " ? " + a.ref() + " : " + b.ref() + ")");
}

/// while-loop whose condition may itself need staged statements:
/// emitted as `for(;;) { <cond stmts>; if(!c) break; <body> }`.
inline void While(const std::function<Rep<bool>()>& cond,
                  const std::function<void()>& body) {
  auto* ctx = CodegenContext::Current();
  ctx->Open("for (;;)");
  Rep<bool> c = cond();
  if (c.is_const()) {
    LB2_CHECK_MSG(!c.const_value(),
                  "staging an unconditionally infinite While loop");
    ctx->EmitLine("break;");
  } else {
    ctx->EmitLine("if (!(" + c.ref() + ")) break;");
    body();
  }
  ctx->Close();
}

/// Infinite loop; terminate with Break() inside `body`.
inline void Loop(const std::function<void()>& body) {
  auto* ctx = CodegenContext::Current();
  ctx->Open("for (;;)");
  body();
  ctx->Close();
}

/// for (int64_t i = lo; i < hi; ++i) body(i)
inline void For(const Rep<int64_t>& lo, const Rep<int64_t>& hi,
                const std::function<void(Rep<int64_t>)>& body) {
  auto* ctx = CodegenContext::Current();
  std::string i = ctx->Fresh("i");
  ctx->Open("for (int64_t " + i + " = " + lo.ref() + "; " + i + " < " +
            hi.ref() + "; " + i + "++)");
  body(Rep<int64_t>::FromRef(i));
  ctx->Close();
}

inline void Break() { Stmt("break;"); }
inline void Continue() { Stmt("continue;"); }

template <typename T>
void Return(const Rep<T>& v) {
  Stmt("return " + v.ref() + ";");
}
inline void ReturnVoid() { Stmt("return;"); }

/// Emits a landmark comment into the generated code.
inline void Comment(const std::string& text) {
  CodegenContext::Current()->Comment(text);
}

}  // namespace lb2::stage

#endif  // LB2_STAGE_CONTROL_H_
