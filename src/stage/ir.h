// The "intermediate representation" of the staging substrate.
//
// Faithful to the paper's architecture, there are no IR-to-IR passes: staged
// operations append C statements directly while the (staged) query
// interpreter runs, so a CModule is just the accumulated target program —
// a prelude, file-scope declarations, and a list of C functions. Emission
// (cgen.cc) is a straight serialization, i.e. the whole compiler is a single
// generation pass (Section 4 of the paper).
#ifndef LB2_STAGE_IR_H_
#define LB2_STAGE_IR_H_

#include <string>
#include <vector>

namespace lb2::stage {

/// One generated C function: signature plus body lines (pre-indented).
struct CFunction {
  std::string return_type;
  std::string name;
  // (c type, parameter name) pairs.
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<std::string> body;
  bool is_static = true;

  std::string Signature() const;
};

/// A complete generated translation unit.
class CModule {
 public:
  /// Adds a file-scope declaration (globals, typedefs).
  void AddGlobal(std::string decl) { globals_.push_back(std::move(decl)); }

  /// Adds a struct definition (emitted before globals).
  void AddStruct(std::string def) { structs_.push_back(std::move(def)); }

  /// Adds a field to the module's `lb2_exec_ctx` struct — the per-run
  /// execution context every entry takes instead of file-static state.
  /// The struct always starts with the fixed ABI header (`void** env;
  /// lb2_out* out;`, mirrored by stage::ExecCtxHeader on the host side);
  /// fields registered here follow in registration order.
  void AddCtxField(std::string type, std::string name) {
    ctx_fields_.emplace_back(std::move(type), std::move(name));
  }

  const std::vector<std::pair<std::string, std::string>>& ctx_fields() const {
    return ctx_fields_;
  }

  /// Records a parameter-slot reference (engine/stage_backend.h emits
  /// `lb2_ctx->params[slot]` loads while staging). The module exports the
  /// resulting slot count as `lb2_param_count` so hosts can validate the
  /// bound vector against the artifact — including one reloaded from disk.
  void NoteParamSlot(int slot) {
    if (slot + 1 > param_slots_) param_slots_ = slot + 1;
  }
  int param_slots() const { return param_slots_; }

  /// Declares `n` profiling slots (engine/profile.h): the context gains an
  /// `int64_t lb2_prof[2n]` tail (zeroed with the rest of the per-run
  /// context) and the module exports `lb2_prof_count`/`lb2_prof_offset` so
  /// hosts can read the counters back after a run. With the default 0,
  /// emission is byte-identical to a module that never heard of profiling.
  void SetProfSlots(int n) { prof_slots_ = n; }
  int prof_slots() const { return prof_slots_; }

  CFunction* AddFunction() {
    functions_.push_back(new CFunction());
    return functions_.back();
  }

  const std::vector<CFunction*>& functions() const { return functions_; }

  /// Serializes the module to compilable C source (prelude included).
  std::string Emit() const;

  ~CModule();
  CModule() = default;
  CModule(const CModule&) = delete;
  CModule& operator=(const CModule&) = delete;

 private:
  std::vector<std::string> structs_;
  std::vector<std::pair<std::string, std::string>> ctx_fields_;
  std::vector<std::string> globals_;
  std::vector<CFunction*> functions_;
  int prof_slots_ = 0;
  int param_slots_ = 0;
};

/// Reentrancy lint over emitted C source: returns the first writable
/// file-scope definition found (a column-0 variable definition that is not
/// const), or "" if the translation unit is clean. Generated queries must
/// keep all mutable state in the execution context, so the compilers assert
/// this on every module they emit.
std::string FindMutableFileScopeState(const std::string& source);

}  // namespace lb2::stage

#endif  // LB2_STAGE_IR_H_
