#include "stage/ir.h"

#include "stage/prelude.h"

namespace lb2::stage {

std::string CFunction::Signature() const {
  std::string sig;
  if (is_static) sig += "static ";
  sig += return_type + " " + name + "(";
  if (params.empty()) {
    sig += "void";
  } else {
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) sig += ", ";
      sig += params[i].first + " " + params[i].second;
    }
  }
  sig += ")";
  return sig;
}

CModule::~CModule() {
  for (CFunction* f : functions_) delete f;
}

std::string CModule::Emit() const {
  std::string out;
  out.reserve(1 << 16);
  out += kCPrelude;
  out += "\n";
  for (const auto& s : structs_) {
    out += s;
    out += "\n";
  }
  for (const auto& g : globals_) {
    out += g;
    out += "\n";
  }
  out += "\n";
  // Forward declarations so generation order never matters.
  for (const CFunction* f : functions_) {
    out += f->Signature();
    out += ";\n";
  }
  out += "\n";
  for (const CFunction* f : functions_) {
    out += f->Signature();
    out += " {\n";
    for (const auto& line : f->body) {
      out += line;
      out += "\n";
    }
    out += "}\n\n";
  }
  return out;
}

}  // namespace lb2::stage
