#include "stage/ir.h"

#include "stage/prelude.h"

namespace lb2::stage {

std::string CFunction::Signature() const {
  std::string sig;
  if (is_static) sig += "static ";
  sig += return_type + " " + name + "(";
  if (params.empty()) {
    sig += "void";
  } else {
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) sig += ", ";
      sig += params[i].first + " " + params[i].second;
    }
  }
  sig += ")";
  return sig;
}

CModule::~CModule() {
  for (CFunction* f : functions_) delete f;
}

std::string CModule::Emit() const {
  std::string out;
  out.reserve(1 << 16);
  out += kCPrelude;
  out += "\n";
  for (const auto& s : structs_) {
    out += s;
    out += "\n";
  }
  // The execution context: the entry's only channel to per-run state. The
  // four-pointer header is a fixed ABI (stage::ExecCtxHeader); scratch
  // fields discovered during staging follow. Always emitted — with the
  // exported lb2_ctx_bytes — so hosts can size a context without knowing
  // the fields. `params` carries the literals bound at Run() for
  // parameterized plans (unused, and left null, for modules staged without
  // parameter references); `morsels` points at the shared morsel dispenser
  // when the run is morsel-driven, null for the static range split.
  out += "typedef struct {\n";
  out += "  void** env;\n";
  out += "  lb2_out* out;\n";
  out += "  const lb2_param* params;\n";
  out += "  lb2_morsel_source* morsels;\n";
  for (const auto& f : ctx_fields_) {
    out += "  " + f.first + " " + f.second + ";\n";
  }
  // Profiling counters ride on the context too — per-run, zeroed with it —
  // and only exist when the module was staged with profiling on, so the
  // profile-off emission below is byte-for-byte what it always was.
  if (prof_slots_ > 0) {
    out += "  int64_t lb2_prof[" + std::to_string(2 * prof_slots_) + "];\n";
  }
  out += "} lb2_exec_ctx;\n";
  out += "const int64_t lb2_ctx_bytes = (int64_t)sizeof(lb2_exec_ctx);\n";
  out += "const int64_t lb2_param_count = " + std::to_string(param_slots_) +
         ";\n";
  if (prof_slots_ > 0) {
    out += "const int64_t lb2_prof_count = " + std::to_string(prof_slots_) +
           ";\n";
    out += "const int64_t lb2_prof_offset = "
           "(int64_t)__builtin_offsetof(lb2_exec_ctx, lb2_prof);\n";
  }
  out += "\n";
  for (const auto& g : globals_) {
    out += g;
    out += "\n";
  }
  out += "\n";
  // Forward declarations so generation order never matters.
  for (const CFunction* f : functions_) {
    out += f->Signature();
    out += ";\n";
  }
  out += "\n";
  for (const CFunction* f : functions_) {
    out += f->Signature();
    out += " {\n";
    for (const auto& line : f->body) {
      out += line;
      out += "\n";
    }
    out += "}\n\n";
  }
  return out;
}

std::string FindMutableFileScopeState(const std::string& source) {
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string line = source.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    // Only column-0 lines can be file-scope definitions; bodies, struct
    // members, and closers ("} lb2_out;") are indented or start with '}'.
    char c = line[0];
    if (c == ' ' || c == '\t' || c == '}' || c == '#' || c == '/') continue;
    if (line.rfind("typedef", 0) == 0) continue;
    if (line.rfind("extern", 0) == 0) continue;
    // Function definitions/declarations carry a parameter list; anything
    // else ending in ';' is a variable definition — writable unless const.
    if (line.back() != ';') continue;
    if (line.find('(') != std::string::npos) continue;
    if (line.find("const ") != std::string::npos) continue;
    return line;
  }
  return "";
}

}  // namespace lb2::stage
