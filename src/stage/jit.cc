#include "stage/jit.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "testing/faults.h"
#include "util/check.h"
#include "util/str.h"
#include "util/time.h"

namespace lb2::stage {

namespace {

std::atomic<int> g_jit_counter{0};

std::string TempDir() {
  const char* env = std::getenv("LB2_JIT_DIR");
  return env != nullptr ? env : "/tmp";
}

/// Shell-quotes a path for std::system (LB2_JIT_DIR may contain spaces).
std::string Quoted(const std::string& path) {
  std::string out = "'";
  for (char c : path) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

int64_t FileBytes(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size) : 0;
}

}  // namespace

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
  if (owns_files_ && std::getenv("LB2_KEEP_JIT") == nullptr) {
    if (!c_path_.empty()) std::remove(c_path_.c_str());
    if (!so_path_.empty()) std::remove(so_path_.c_str());
  }
}

void* JitModule::symbol(const std::string& name) const {
  void* sym = dlsym(handle_, name.c_str());
  LB2_CHECK_MSG(sym != nullptr, ("missing JIT symbol " + name).c_str());
  return sym;
}

void* JitModule::TrySymbol(const std::string& name) const {
  return dlsym(handle_, name.c_str());
}

std::string Jit::CompilerCommand() {
  const char* env = std::getenv("LB2_CC");
  return env != nullptr ? env : "cc";
}

namespace {

/// Runs `cmd` through the shell and captures stdout.
std::string RunCapture(const std::string& cmd) {
  std::string out;
  FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return out;
  char buf[256];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), p)) > 0) out.append(buf, n);
  pclose(p);
  return out;
}

std::string FirstLineTrimmed(const std::string& s) {
  size_t end = s.find('\n');
  std::string line = end == std::string::npos ? s : s.substr(0, end);
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

}  // namespace

std::string Jit::CodegenFlags() {
  std::string flags = " -fopenmp-simd";
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) flags += " -mavx2";
#endif
  return flags;
}

std::string Jit::CompilerIdentity() {
  static std::mutex mu;
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  std::string cmd = CompilerCommand();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(cmd);
    if (it != cache->end()) return it->second;
  }
  // First token is the binary; LB2_CC may carry flags after it.
  std::string tool = cmd.substr(0, cmd.find(' '));
  std::string path =
      FirstLineTrimmed(RunCapture("command -v " + Quoted(tool) +
                                  " 2>/dev/null"));
  if (path.empty()) path = tool;
  std::string version = FirstLineTrimmed(RunCapture(cmd + " --version 2>&1"));
  std::string id = path + " | " + version + " |" + CodegenFlags();
  std::lock_guard<std::mutex> lock(mu);
  (*cache)[cmd] = id;
  return id;
}

std::unique_ptr<JitModule> Jit::TryLoad(const std::string& so_path,
                                        const std::string& source,
                                        std::string* error) {
  auto out = std::unique_ptr<JitModule>(new JitModule());
  out->source_ = source;
  out->so_path_ = so_path;
  out->owns_files_ = false;  // the artifact store owns the file
  out->so_bytes_ = FileBytes(so_path);
  testing::FaultDecision dl_fault =
      testing::CheckFault(testing::FaultPoint::kDlopen);
  out->handle_ = dl_fault.fail
                     ? nullptr
                     : dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (out->handle_ == nullptr) {
    if (dl_fault.fail) {
      if (error != nullptr) *error = "injected fault: dlopen";
      return nullptr;
    }
    const char* dl = dlerror();
    if (error != nullptr) {
      *error = StrPrintf("dlopen(%s) failed: %s", so_path.c_str(),
                         dl != nullptr ? dl : "unknown error");
    }
    return nullptr;
  }
  // ABI check before anyone calls into the artifact: the reentrant-entry
  // contract must be exported, else this is a stale or foreign .so.
  if (dlsym(out->handle_, "lb2_query") == nullptr ||
      dlsym(out->handle_, "lb2_ctx_bytes") == nullptr ||
      dlsym(out->handle_, "lb2_param_count") == nullptr) {
    if (error != nullptr) {
      *error = StrPrintf(
          "artifact %s lacks the lb2_query/lb2_ctx_bytes/lb2_param_count "
          "exports (ABI mismatch)", so_path.c_str());
    }
    return nullptr;
  }
  return out;
}

std::unique_ptr<JitModule> Jit::TryCompile(const CModule& module,
                                           const std::string& tag,
                                           const std::string& extra_flags,
                                           std::string* error) {
  Stopwatch emit_timer;
  std::string source = module.Emit();
  double emit_ms = emit_timer.ElapsedMs();
  auto out = TryCompileSource(source, tag, extra_flags, error);
  if (out != nullptr) out->codegen_ms_ = emit_ms;
  return out;
}

std::unique_ptr<JitModule> Jit::TryCompileSource(const std::string& source,
                                                 const std::string& tag,
                                                 const std::string& extra_flags,
                                                 std::string* error) {
  auto out = std::unique_ptr<JitModule>(new JitModule());
  out->source_ = source;

  int id = g_jit_counter.fetch_add(1);
  std::string base = StrPrintf("%s/lb2_%s_%d_%d", TempDir().c_str(),
                               tag.c_str(), static_cast<int>(getpid()), id);
  out->c_path_ = base + ".c";
  out->so_path_ = base + ".so";

  {
    std::ofstream f(out->c_path_);
    if (!f.good()) {
      if (error != nullptr) *error = "cannot write " + out->c_path_;
      return nullptr;
    }
    f << out->source_;
  }

  std::string cmd = CompilerCommand() + " -O2 -fPIC -shared" +
                    CodegenFlags() + " " + extra_flags +
                    " -o " + Quoted(out->so_path_) + " " +
                    Quoted(out->c_path_) + " -lpthread -lm 2> " +
                    Quoted(base + ".err");
  // Deterministic fault injection (testing/faults.h): a disarmed check is
  // one relaxed load. An injected cc failure skips the real compiler and
  // takes the identical failure path, minus keeping the .c (the source is
  // fine; litter from repeated injections would hide real postmortems).
  testing::FaultDecision cc_fault =
      testing::CheckFault(testing::FaultPoint::kCcExec);
  Stopwatch cc_timer;
  int rc = cc_fault.fail ? 1 : std::system(cmd.c_str());
  out->compile_ms_ = cc_timer.ElapsedMs();
  if (rc != 0) {
    if (cc_fault.fail) {
      if (error != nullptr) *error = "injected fault: cc_exec";
      std::remove((base + ".err").c_str());
      std::remove(out->c_path_.c_str());
      std::remove(out->so_path_.c_str());
      out->c_path_.clear();
      out->so_path_.clear();
      return nullptr;
    }
    std::string err;
    {
      std::ifstream ef(base + ".err");
      err.assign(std::istreambuf_iterator<char>(ef),
                 std::istreambuf_iterator<char>());
    }
    std::remove((base + ".err").c_str());
    if (error != nullptr) {
      *error = StrPrintf("generated-code compile failed (%s):\n%s"
                         "source kept at %s",
                         cmd.c_str(), err.c_str(), out->c_path_.c_str());
    }
    // Keep the .c for postmortem debugging; drop the half-written .so.
    std::remove(out->so_path_.c_str());
    out->c_path_.clear();
    out->so_path_.clear();
    return nullptr;
  }
  std::remove((base + ".err").c_str());
  out->so_bytes_ = FileBytes(out->so_path_);

  testing::FaultDecision dl_fault =
      testing::CheckFault(testing::FaultPoint::kDlopen);
  out->handle_ = dl_fault.fail
                     ? nullptr
                     : dlopen(out->so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (out->handle_ == nullptr) {
    if (dl_fault.fail) {
      if (error != nullptr) *error = "injected fault: dlopen";
      return nullptr;  // ~JitModule removes the .c/.so pair
    }
    const char* dl = dlerror();
    if (error != nullptr) {
      *error = StrPrintf("dlopen(%s) failed: %s", out->so_path_.c_str(),
                         dl != nullptr ? dl : "unknown error");
    }
    return nullptr;
  }
  return out;
}

std::unique_ptr<JitModule> Jit::Compile(const CModule& module,
                                        const std::string& tag,
                                        const std::string& extra_flags) {
  std::string error;
  auto out = TryCompile(module, tag, extra_flags, &error);
  LB2_CHECK_MSG(out != nullptr, error.c_str());
  return out;
}

std::unique_ptr<JitModule> Jit::CompileSource(const std::string& source,
                                              const std::string& tag,
                                              const std::string& extra_flags) {
  std::string error;
  auto out = TryCompileSource(source, tag, extra_flags, &error);
  LB2_CHECK_MSG(out != nullptr, error.c_str());
  return out;
}

// Layout contract with the generated `lb2_out` struct in prelude.h.
static_assert(sizeof(QueryOut) == 40, "QueryOut layout drifted from prelude");
static_assert(offsetof(QueryOut, rows) == 24, "QueryOut layout drifted");

// Layout contract with the generated `lb2_exec_ctx` header (ir.cc).
static_assert(sizeof(ExecCtxHeader) == 32, "ExecCtxHeader layout drifted");
static_assert(offsetof(ExecCtxHeader, out) == 8, "ExecCtxHeader layout drifted");
static_assert(offsetof(ExecCtxHeader, params) == 16,
              "ExecCtxHeader layout drifted");
static_assert(offsetof(ExecCtxHeader, morsels) == 24,
              "ExecCtxHeader layout drifted");

// Layout contract with the generated `lb2_morsel_source` struct (prelude.h).
// The host uses std::atomic where generated C uses `volatile long long` +
// __atomic builtins; the asserts pin the shared memory layout and lock-free
// atomics guarantee both sides access it with plain 8-byte atomic ops.
static_assert(sizeof(MorselSource) == 48,
              "MorselSource layout drifted from prelude");
static_assert(offsetof(MorselSource, morsel_rows) == 8,
              "MorselSource layout drifted");
static_assert(offsetof(MorselSource, seed_rows) == 16,
              "MorselSource layout drifted");
static_assert(offsetof(MorselSource, seed) == 24,
              "MorselSource layout drifted");
static_assert(offsetof(MorselSource, claims) == 32,
              "MorselSource layout drifted");
static_assert(offsetof(MorselSource, claims_len) == 40,
              "MorselSource layout drifted");
static_assert(std::atomic<long long>::is_always_lock_free,
              "morsel dispenser needs lock-free 8-byte atomics");

// Layout contract with the generated `lb2_param` struct (prelude.h).
static_assert(sizeof(ParamSlot) == 32, "ParamSlot layout drifted from prelude");
static_assert(offsetof(ParamSlot, f64) == 8, "ParamSlot layout drifted");
static_assert(offsetof(ParamSlot, sp) == 16, "ParamSlot layout drifted");
static_assert(offsetof(ParamSlot, sn) == 24, "ParamSlot layout drifted");

}  // namespace lb2::stage
