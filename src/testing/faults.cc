#include "testing/faults.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/str.h"

namespace lb2::testing {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

/// Armed plan + per-rule hit counters, guarded by a mutex. Only armed
/// sites pay for it; the disarmed path never reaches here.
struct FaultState {
  std::mutex mu;
  std::vector<FaultRule> rules;
  std::vector<int64_t> hits;   // per rule, parallel to `rules`
  std::vector<int64_t> fires;  // per rule
  bool chaos = false;
  uint64_t chaos_seed = 0;
  int64_t chaos_hits[kFaultPointCount] = {};  // per point, chaos schedule
  std::atomic<int64_t> fired_by_point[kFaultPointCount] = {};
};

FaultState& State() {
  static FaultState* s = new FaultState();
  return *s;
}

constexpr const char* kPointNames[kFaultPointCount] = {
    "cc_exec", "artifact_write", "artifact_rename", "dlopen",
    "disk",    "drift_rebuild",  "midquery_switch"};

bool PointFromName(const std::string& name, FaultPoint* out) {
  for (int i = 0; i < kFaultPointCount; ++i) {
    if (name == kPointNames[i]) {
      *out = static_cast<FaultPoint>(i);
      return true;
    }
  }
  return false;
}

/// Which actions make sense where: `short` needs a byte stream to cut,
/// `full` models capacity, `fail`/`delay` apply to any operation.
bool ActionValidAt(FaultRule::Action a, FaultPoint p) {
  switch (a) {
    case FaultRule::Action::kShort:
      return p == FaultPoint::kArtifactWrite;
    case FaultRule::Action::kFull:
      return p == FaultPoint::kDisk;
    case FaultRule::Action::kFail:
      return p != FaultPoint::kDisk;
    case FaultRule::Action::kDelay:
      return true;
  }
  return false;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

bool ParseOneRule(const std::string& text, FaultRule* rule,
                  std::string* error) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ':') {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() < 2) {
    *error = "fault rule '" + text + "' needs point:action";
    return false;
  }
  if (!PointFromName(parts[0], &rule->point)) {
    *error = "unknown fault point '" + parts[0] + "' in '" + text + "'";
    return false;
  }
  const std::string& action = parts[1];
  if (action == "fail") {
    rule->action = FaultRule::Action::kFail;
  } else if (action == "short") {
    rule->action = FaultRule::Action::kShort;
  } else if (action == "full") {
    rule->action = FaultRule::Action::kFull;
  } else if (action.rfind("delay=", 0) == 0) {
    rule->action = FaultRule::Action::kDelay;
    std::string v = action.substr(6);
    if (v.size() >= 2 && v.compare(v.size() - 2, 2, "ms") == 0) {
      v = v.substr(0, v.size() - 2);
    }
    char* end = nullptr;
    rule->delay_ms = std::strtod(v.c_str(), &end);
    if (v.empty() || end == nullptr || *end != '\0' || rule->delay_ms < 0) {
      *error = "bad delay value in '" + text + "'";
      return false;
    }
  } else {
    *error = "unknown fault action '" + action + "' in '" + text + "'";
    return false;
  }
  if (!ActionValidAt(rule->action, rule->point)) {
    *error = "action '" + action + "' does not apply to point '" + parts[0] +
             "' in '" + text + "'";
    return false;
  }
  for (size_t i = 2; i < parts.size(); ++i) {
    const std::string& mod = parts[i];
    if (mod == "once") {
      rule->times = 1;
    } else if (mod.rfind("every=", 0) == 0) {
      if (!ParseInt(mod.substr(6), &rule->every) || rule->every < 1) {
        *error = "bad every= value in '" + text + "'";
        return false;
      }
    } else if (mod.rfind("times=", 0) == 0) {
      if (!ParseInt(mod.substr(6), &rule->times) || rule->times < 1) {
        *error = "bad times= value in '" + text + "'";
        return false;
      }
    } else {
      *error = "unknown fault schedule '" + mod + "' in '" + text + "'";
      return false;
    }
  }
  return true;
}

/// Arms LB2_FAULTS at process start so externally-driven runs (benchmarks,
/// the serve example, CI lanes) need no code change. A malformed spec
/// aborts loudly — a fault test that silently runs fault-free is worse
/// than one that fails to start.
bool ArmFromEnv() {
  const char* env = std::getenv("LB2_FAULTS");
  if (env == nullptr || env[0] == '\0') return false;
  FaultPlan plan;
  std::string error;
  if (!FaultPlan::Parse(env, &plan, &error)) {
    std::fprintf(stderr, "[lb2-faults] bad LB2_FAULTS spec: %s\n",
                 error.c_str());
    std::abort();
  }
  ArmFaults(plan);
  return true;
}

const bool g_env_armed = ArmFromEnv();

}  // namespace

const char* FaultPointName(FaultPoint p) {
  int i = static_cast<int>(p);
  return (i >= 0 && i < kFaultPointCount) ? kPointNames[i] : "?";
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  FaultPlan out;
  size_t start = 0;
  for (size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ';') {
      std::string rule_text = spec.substr(start, i - start);
      start = i + 1;
      // Trim surrounding spaces; empty rules (trailing ';') are fine.
      while (!rule_text.empty() && rule_text.front() == ' ') {
        rule_text.erase(rule_text.begin());
      }
      while (!rule_text.empty() && rule_text.back() == ' ') {
        rule_text.pop_back();
      }
      if (rule_text.empty()) continue;
      if (rule_text.rfind("chaos:", 0) == 0) {
        int64_t seed = 0;
        if (!ParseInt(rule_text.substr(6), &seed)) {
          *error = "bad chaos seed in '" + rule_text + "'";
          return false;
        }
        out.Chaos(static_cast<uint64_t>(seed));
        continue;
      }
      FaultRule rule;
      if (!ParseOneRule(rule_text, &rule, error)) return false;
      out.Add(rule);
    }
  }
  *plan = std::move(out);
  return true;
}

FaultPlan& FaultPlan::Add(const FaultRule& rule) {
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::Fail(FaultPoint p, int64_t every, int64_t times) {
  FaultRule r;
  r.point = p;
  r.action = FaultRule::Action::kFail;
  r.every = every;
  r.times = times;
  return Add(r);
}

FaultPlan& FaultPlan::Delay(FaultPoint p, double ms) {
  FaultRule r;
  r.point = p;
  r.action = FaultRule::Action::kDelay;
  r.delay_ms = ms;
  return Add(r);
}

FaultPlan& FaultPlan::ShortWrite(int64_t every, int64_t times) {
  FaultRule r;
  r.point = FaultPoint::kArtifactWrite;
  r.action = FaultRule::Action::kShort;
  r.every = every;
  r.times = times;
  return Add(r);
}

FaultPlan& FaultPlan::DiskFull(int64_t every, int64_t times) {
  FaultRule r;
  r.point = FaultPoint::kDisk;
  r.action = FaultRule::Action::kFull;
  r.every = every;
  r.times = times;
  return Add(r);
}

FaultPlan& FaultPlan::Chaos(uint64_t seed) {
  has_chaos_ = true;
  chaos_seed_ = seed;
  return *this;
}

void ArmFaults(const FaultPlan& plan) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.rules = plan.rules();
  s.hits.assign(s.rules.size(), 0);
  s.fires.assign(s.rules.size(), 0);
  s.chaos = plan.has_chaos();
  s.chaos_seed = plan.chaos_seed();
  for (int i = 0; i < kFaultPointCount; ++i) s.chaos_hits[i] = 0;
  internal::g_armed.store(!plan.empty(), std::memory_order_release);
}

void DisarmFaults() { ArmFaults(FaultPlan()); }

bool FaultsArmed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

int64_t FaultsFired(FaultPoint p) {
  return State().fired_by_point[static_cast<int>(p)].load(
      std::memory_order_relaxed);
}

int64_t FaultsFiredTotal() {
  int64_t total = 0;
  for (int i = 0; i < kFaultPointCount; ++i) {
    total += State().fired_by_point[i].load(std::memory_order_relaxed);
  }
  return total;
}

namespace internal {

namespace {

/// splitmix64 finalizer over (seed, point, hit): the whole source of chaos
/// randomness, so a seed replays identically run after run.
uint64_t ChaosMix(uint64_t seed, int point, int64_t hit) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(point + 1)
               + 0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(hit);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Every (action, point) pair chaos may pick; must mirror ActionValidAt.
std::vector<FaultRule::Action> ChaosActionsAt(FaultPoint p) {
  std::vector<FaultRule::Action> a;
  for (FaultRule::Action cand :
       {FaultRule::Action::kFail, FaultRule::Action::kShort,
        FaultRule::Action::kFull, FaultRule::Action::kDelay}) {
    if (ActionValidAt(cand, p)) a.push_back(cand);
  }
  return a;
}

}  // namespace

FaultDecision Evaluate(FaultPoint p) {
  FaultDecision d;
  double delay_ms = 0.0;
  FaultState& s = State();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = 0; i < s.rules.size(); ++i) {
      FaultRule& r = s.rules[i];
      if (r.point != p) continue;
      int64_t hit = ++s.hits[i];
      if (hit % r.every != 0) continue;
      if (r.times >= 0 && s.fires[i] >= r.times) continue;
      ++s.fires[i];
      s.fired_by_point[static_cast<int>(p)].fetch_add(
          1, std::memory_order_relaxed);
      switch (r.action) {
        case FaultRule::Action::kFail: d.fail = true; break;
        case FaultRule::Action::kShort: d.short_write = true; break;
        case FaultRule::Action::kFull: d.full = true; break;
        case FaultRule::Action::kDelay: delay_ms += r.delay_ms; break;
      }
    }
    if (s.chaos) {
      // ~1 in 8 hits fires, with an action drawn from the ones valid at
      // this point; delays stay small (1-4 ms) so chaos soaks keep moving.
      int64_t hit = ++s.chaos_hits[static_cast<int>(p)];
      uint64_t h = ChaosMix(s.chaos_seed, static_cast<int>(p), hit);
      if ((h & 7) == 0) {
        std::vector<FaultRule::Action> actions = ChaosActionsAt(p);
        FaultRule::Action pick = actions[(h >> 8) % actions.size()];
        s.fired_by_point[static_cast<int>(p)].fetch_add(
            1, std::memory_order_relaxed);
        switch (pick) {
          case FaultRule::Action::kFail: d.fail = true; break;
          case FaultRule::Action::kShort: d.short_write = true; break;
          case FaultRule::Action::kFull: d.full = true; break;
          case FaultRule::Action::kDelay:
            delay_ms += 1.0 + static_cast<double>((h >> 16) & 3);
            break;
        }
      }
    }
  }
  // Sleep outside the lock so a delayed site never stalls other threads'
  // fault evaluation.
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return d;
}

}  // namespace internal

}  // namespace lb2::testing
