// Deterministic fault injection for the serving stack.
//
// The paper's core claim — the interpreter *is* the compiler — gives the
// service a free correctness oracle for every degraded path: whatever
// infrastructure fails (the external cc, an artifact write, dlopen, the
// disk), the interpreted evaluator must still answer, and answer the same
// rows. This layer makes those failures reproducible: tests (or an
// operator, via the LB2_FAULTS environment variable) arm a FaultPlan, and
// the injection sites threaded through stage/jit.cc, compile/lb2_compiler
// and service/artifact_store.cc consult it before touching the real world.
//
// Cost discipline: the sites are compiled in always — there is no build
// flavor to drift from production — but a disarmed check is exactly one
// relaxed atomic load (CheckFault below). No site sits on the warm request
// path (a cache hit runs no cc, no artifact I/O, no dlopen), so arming a
// plan cannot slow warm traffic either.
//
// Spec grammar (LB2_FAULTS or FaultPlan::Parse):
//
//   spec   := rule (';' rule)*
//   rule   := point ':' action (':' sched)*
//           | 'chaos' ':' <seed>
//   point  := cc_exec | artifact_write | artifact_rename | dlopen | disk
//           | drift_rebuild | midquery_switch
//   action := fail                 # report failure at the site
//           | short                # write only half the bytes (writes only)
//           | full                 # behave as ENOSPC (disk only)
//           | delay=<float>[ms]    # sleep before the real operation
//   sched  := every=<N>            # fire on every Nth hit (default 1 = all)
//           | times=<N>            # fire at most N times total
//           | once                 # times=1
//
// Example: "cc_exec:fail:every=3;artifact_write:short;dlopen:fail:once;
//           cc_exec:delay=200ms;disk:full"
//
// Determinism: rules fire on hit counts, never on wall-clock or real
// randomness, so a seeded test schedule produces the same injections on
// every run. Rules for one point compose (a delay and a fail can both
// apply); counters record every fire for tests and the service's
// `faults_injected` stat.
//
// Chaos mode (`LB2_FAULTS=chaos:<seed>`) arms *every* registered point at
// once with a seeded pseudo-random schedule: each site hit hashes
// (seed, point, per-point hit count) and fires ~1 in 8 times with an
// action valid at that point (fail/short/full plus small delays). Because
// the schedule depends only on the seed and deterministic hit counters —
// never on wall clock or real randomness — a given seed replays the same
// injection sequence per site on every run. This is the soak-lane mode:
// a load harness against a `chaos:`-armed server must see zero protocol
// violations and full recovery, whatever subset of the degrade paths the
// seed happens to exercise. Chaos composes with explicit rules.
#ifndef LB2_TESTING_FAULTS_H_
#define LB2_TESTING_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lb2::testing {

enum class FaultPoint : int {
  kCcExec = 0,      // external-compiler invocation (stage/jit.cc)
  kArtifactWrite,   // artifact byte write (service/artifact_store.cc)
  kArtifactRename,  // rename step of an atomic artifact write
  kDlopen,          // dlopen of a generated or persisted shared object
  kDisk,            // disk capacity at artifact-store writes
  kDriftRebuild,    // drift worker's background re-stage (service/service.cc)
  kMidquerySwitch,  // morsel-boundary stop poll of an interpreted prefix:
                    // `fail` forces the interpreted→compiled switch at the
                    // next boundary (service/service.cc)
};
inline constexpr int kFaultPointCount = 7;

/// "cc_exec", "artifact_write", ... (the spec-grammar names).
const char* FaultPointName(FaultPoint p);

/// What an armed site should do. Delays are served inside CheckFault (the
/// site never sees them); the flags select the site's failure branch.
struct FaultDecision {
  bool fail = false;         // report failure without the real operation
  bool short_write = false;  // write only half the bytes, report success
  bool full = false;         // behave as if the disk is full
};

/// One armed rule: an action at a point on a deterministic schedule.
struct FaultRule {
  enum class Action { kFail, kShort, kDelay, kFull };
  FaultPoint point = FaultPoint::kCcExec;
  Action action = Action::kFail;
  double delay_ms = 0.0;  // kDelay only
  int64_t every = 1;      // fire on every Nth matching hit
  int64_t times = -1;     // max total fires; -1 = unlimited
};

/// A set of rules, buildable in-process or parsed from the spec grammar.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the LB2_FAULTS grammar. Returns false and fills *error (which
  /// names the offending rule) on any syntax or applicability violation —
  /// a bad spec must never be silently ignored.
  static bool Parse(const std::string& spec, FaultPlan* plan,
                    std::string* error);

  FaultPlan& Add(const FaultRule& rule);
  // Convenience builders for tests.
  FaultPlan& Fail(FaultPoint p, int64_t every = 1, int64_t times = -1);
  FaultPlan& Delay(FaultPoint p, double ms);
  FaultPlan& ShortWrite(int64_t every = 1, int64_t times = -1);
  FaultPlan& DiskFull(int64_t every = 1, int64_t times = -1);
  /// Arms seeded-random chaos over every point (see the header comment).
  FaultPlan& Chaos(uint64_t seed);

  const std::vector<FaultRule>& rules() const { return rules_; }
  bool has_chaos() const { return has_chaos_; }
  uint64_t chaos_seed() const { return chaos_seed_; }
  bool empty() const { return rules_.empty() && !has_chaos_; }

 private:
  std::vector<FaultRule> rules_;
  bool has_chaos_ = false;
  uint64_t chaos_seed_ = 0;
};

/// Arms `plan` process-wide, replacing any previous plan and resetting the
/// per-rule hit schedules (fired counters are cumulative; see below).
/// Thread-safe; an empty plan is equivalent to DisarmFaults().
void ArmFaults(const FaultPlan& plan);

/// Returns every site to the zero-cost disarmed path.
void DisarmFaults();

bool FaultsArmed();

/// Cumulative injections fired at `p` / across all points since process
/// start (survive Arm/Disarm so a service's `faults_injected` counter is
/// monotonic, as Prometheus counters must be).
int64_t FaultsFired(FaultPoint p);
int64_t FaultsFiredTotal();

namespace internal {
extern std::atomic<bool> g_armed;
FaultDecision Evaluate(FaultPoint p);
}  // namespace internal

/// The injection-site check. Disarmed: one relaxed atomic load, nothing
/// else. Armed: evaluates the plan's rules for `p` (serving any delay by
/// sleeping) and returns the composed decision.
inline FaultDecision CheckFault(FaultPoint p) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return {};
  return internal::Evaluate(p);
}

}  // namespace lb2::testing

#endif  // LB2_TESTING_FAULTS_H_
