#include "volcano/volcano.h"

#include <algorithm>
#include <map>
#include <memory>

#include "util/check.h"
#include "util/str.h"

namespace lb2::volcano {

using plan::AggKind;
using plan::ExprOp;
using plan::ExprRef;
using plan::OpType;
using plan::PlanRef;
using schema::FieldKind;
using schema::Schema;

namespace {

int64_t AsI64(const RtVal& v) {
  if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v);
  LB2_CHECK_MSG(std::holds_alternative<double>(v), "expected numeric value");
  return static_cast<int64_t>(std::get<double>(v));
}

double AsF64(const RtVal& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  return static_cast<double>(std::get<int64_t>(v));
}

std::string_view AsStr(const RtVal& v) {
  LB2_CHECK_MSG(std::holds_alternative<std::string_view>(v),
                "expected string value");
  return std::get<std::string_view>(v);
}

bool BothInt(const RtVal& a, const RtVal& b) {
  return std::holds_alternative<int64_t>(a) &&
         std::holds_alternative<int64_t>(b);
}

RtVal Arith(ExprOp op, const RtVal& a, const RtVal& b) {
  if (op == ExprOp::kDiv) return AsF64(a) / AsF64(b);
  if (BothInt(a, b)) {
    int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
    switch (op) {
      case ExprOp::kAdd: return x + y;
      case ExprOp::kSub: return x - y;
      case ExprOp::kMul: return x * y;
      default: break;
    }
  }
  double x = AsF64(a), y = AsF64(b);
  switch (op) {
    case ExprOp::kAdd: return x + y;
    case ExprOp::kSub: return x - y;
    case ExprOp::kMul: return x * y;
    default: break;
  }
  LB2_CHECK(false);
  return int64_t{0};
}

int Compare(const RtVal& a, const RtVal& b) {
  if (std::holds_alternative<std::string_view>(a)) {
    auto x = AsStr(a), y = AsStr(b);
    int c = x.compare(y);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (BothInt(a, b)) {
    int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = AsF64(a), y = AsF64(b);
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace

RtVal EvalExpr(const ExprRef& e, const Schema& input, const RtTuple& tuple,
               const ExecContext& ctx) {
  switch (e->op) {
    case ExprOp::kColRef: {
      int i = input.IndexOf(e->str);
      LB2_CHECK_MSG(i >= 0, ("unbound column " + e->str).c_str());
      return tuple[static_cast<size_t>(i)];
    }
    case ExprOp::kIntConst:
    case ExprOp::kBoolConst:
    case ExprOp::kDateConst:
      return e->i64;
    case ExprOp::kDoubleConst:
      return e->f64;
    case ExprOp::kStrConst:
      return std::string_view(e->str);
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
      return Arith(e->op, EvalExpr(e->children[0], input, tuple, ctx),
                   EvalExpr(e->children[1], input, tuple, ctx));
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      int c = Compare(EvalExpr(e->children[0], input, tuple, ctx),
                      EvalExpr(e->children[1], input, tuple, ctx));
      switch (e->op) {
        case ExprOp::kEq: return int64_t{c == 0};
        case ExprOp::kNe: return int64_t{c != 0};
        case ExprOp::kLt: return int64_t{c < 0};
        case ExprOp::kLe: return int64_t{c <= 0};
        case ExprOp::kGt: return int64_t{c > 0};
        default: return int64_t{c >= 0};
      }
    }
    case ExprOp::kAnd:
      return int64_t{
          AsI64(EvalExpr(e->children[0], input, tuple, ctx)) != 0 &&
          AsI64(EvalExpr(e->children[1], input, tuple, ctx)) != 0};
    case ExprOp::kOr:
      return int64_t{
          AsI64(EvalExpr(e->children[0], input, tuple, ctx)) != 0 ||
          AsI64(EvalExpr(e->children[1], input, tuple, ctx)) != 0};
    case ExprOp::kNot:
      return int64_t{AsI64(EvalExpr(e->children[0], input, tuple, ctx)) == 0};
    case ExprOp::kLike:
      return int64_t{
          LikeMatch(AsStr(EvalExpr(e->children[0], input, tuple, ctx)),
                    e->str)};
    case ExprOp::kNotLike:
      return int64_t{
          !LikeMatch(AsStr(EvalExpr(e->children[0], input, tuple, ctx)),
                     e->str)};
    case ExprOp::kStartsWith:
      return int64_t{
          StartsWith(AsStr(EvalExpr(e->children[0], input, tuple, ctx)),
                     e->str)};
    case ExprOp::kEndsWith:
      return int64_t{
          EndsWith(AsStr(EvalExpr(e->children[0], input, tuple, ctx)),
                   e->str)};
    case ExprOp::kContains: {
      auto s = AsStr(EvalExpr(e->children[0], input, tuple, ctx));
      return int64_t{s.find(e->str) != std::string_view::npos};
    }
    case ExprOp::kInStr: {
      auto s = AsStr(EvalExpr(e->children[0], input, tuple, ctx));
      for (const auto& v : e->str_list) {
        if (s == v) return int64_t{1};
      }
      return int64_t{0};
    }
    case ExprOp::kInInt: {
      int64_t s = AsI64(EvalExpr(e->children[0], input, tuple, ctx));
      for (int64_t v : e->int_list) {
        if (s == v) return int64_t{1};
      }
      return int64_t{0};
    }
    case ExprOp::kCase:
      if (AsI64(EvalExpr(e->children[0], input, tuple, ctx)) != 0) {
        return EvalExpr(e->children[1], input, tuple, ctx);
      }
      return EvalExpr(e->children[2], input, tuple, ctx);
    case ExprOp::kYear:
      return AsI64(EvalExpr(e->children[0], input, tuple, ctx)) / 10000;
    case ExprOp::kSubstring: {
      auto s = AsStr(EvalExpr(e->children[0], input, tuple, ctx));
      size_t pos = std::min(static_cast<size_t>(e->i64), s.size());
      size_t len = std::min(static_cast<size_t>(e->i64b), s.size() - pos);
      return s.substr(pos, len);
    }
    case ExprOp::kScalarRef:
      return ctx.scalars[static_cast<size_t>(e->i64)];
  }
  LB2_CHECK(false);
  return int64_t{0};
}

namespace {

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

class ScanOp final : public Op {
 public:
  ScanOp(const plan::PlanNode& n, ExecContext* ctx)
      : table_(&ctx->db->table(n.table)) {
    schema_ = table_->schema();
  }
  void Open() override { row_ = 0; }
  bool Next(RtTuple* out) override {
    if (row_ >= table_->num_rows()) return false;
    out->clear();
    for (int i = 0; i < schema_.size(); ++i) {
      const rt::Column& c = table_->column(i);
      switch (schema_.field(i).kind) {
        case FieldKind::kInt64: out->push_back(c.Int64At(row_)); break;
        case FieldKind::kDouble: out->push_back(c.DoubleAt(row_)); break;
        case FieldKind::kDate:
          out->push_back(static_cast<int64_t>(c.DateAt(row_)));
          break;
        case FieldKind::kString: out->push_back(c.StringAt(row_)); break;
      }
    }
    ++row_;
    return true;
  }
  void Close() override {}

 private:
  const rt::Table* table_;
  int64_t row_ = 0;
};

class SelectOp final : public Op {
 public:
  SelectOp(const plan::PlanNode& n, std::unique_ptr<Op> child,
           ExecContext* ctx)
      : child_(std::move(child)), pred_(n.predicate), ctx_(ctx) {
    schema_ = child_->schema();
  }
  void Open() override { child_->Open(); }
  bool Next(RtTuple* out) override {
    // The paper's Figure 3d loop: keep pulling until the predicate passes.
    while (child_->Next(out)) {
      if (AsI64(EvalExpr(pred_, schema_, *out, *ctx_)) != 0) return true;
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Op> child_;
  ExprRef pred_;
  ExecContext* ctx_;
};

class ProjectOp final : public Op {
 public:
  ProjectOp(const plan::PlanNode& n, std::unique_ptr<Op> child,
            ExecContext* ctx)
      : child_(std::move(child)), node_(&n), ctx_(ctx) {
    for (size_t i = 0; i < n.exprs.size(); ++i) {
      schema_.Add({n.names[i], InferKind(n.exprs[i], child_->schema())});
    }
  }
  void Open() override { child_->Open(); }
  bool Next(RtTuple* out) override {
    RtTuple in;
    if (!child_->Next(&in)) return false;
    out->clear();
    for (const auto& e : node_->exprs) {
      out->push_back(EvalExpr(e, child_->schema(), in, *ctx_));
    }
    return true;
  }
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Op> child_;
  const plan::PlanNode* node_;
  ExecContext* ctx_;
};

using Key = std::vector<RtVal>;

struct KeyLess {
  bool operator()(const Key& a, const Key& b) const {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  }
};

Key MakeKey(const std::vector<std::string>& cols, const Schema& s,
            const RtTuple& t) {
  Key k;
  k.reserve(cols.size());
  for (const auto& c : cols) {
    k.push_back(t[static_cast<size_t>(s.IndexOf(c))]);
  }
  return k;
}

/// Inner hash join; builds from the left child (like the paper's Figure 5).
class HashJoinOp final : public Op {
 public:
  HashJoinOp(const plan::PlanNode& n, std::unique_ptr<Op> left,
             std::unique_ptr<Op> right, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        node_(&n),
        ctx_(ctx) {
    schema_ = left_->schema().Concat(right_->schema());
  }
  void Open() override {
    left_->Open();
    RtTuple t;
    while (left_->Next(&t)) {
      table_[MakeKey(node_->left_keys, left_->schema(), t)].push_back(t);
    }
    left_->Close();
    right_->Open();
    matches_ = nullptr;
    match_idx_ = 0;
  }
  bool Next(RtTuple* out) override {
    for (;;) {
      while (matches_ != nullptr && match_idx_ < matches_->size()) {
        const RtTuple& l = (*matches_)[match_idx_++];
        *out = l;
        out->insert(out->end(), right_row_.begin(), right_row_.end());
        if (node_->predicate == nullptr ||
            AsI64(EvalExpr(node_->predicate, schema_, *out, *ctx_)) != 0) {
          return true;
        }
      }
      if (!right_->Next(&right_row_)) return false;
      auto it = table_.find(
          MakeKey(node_->right_keys, right_->schema(), right_row_));
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_idx_ = 0;
    }
  }
  void Close() override {
    right_->Close();
    table_.clear();
  }

 private:
  std::unique_ptr<Op> left_;
  std::unique_ptr<Op> right_;
  const plan::PlanNode* node_;
  ExecContext* ctx_;
  std::map<Key, std::vector<RtTuple>, KeyLess> table_;
  const std::vector<RtTuple>* matches_ = nullptr;
  size_t match_idx_ = 0;
  RtTuple right_row_;
};

/// Semi/anti join: builds from the right child, streams the left.
class SemiAntiJoinOp final : public Op {
 public:
  SemiAntiJoinOp(const plan::PlanNode& n, std::unique_ptr<Op> left,
                 std::unique_ptr<Op> right, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        node_(&n),
        anti_(n.type == OpType::kAntiJoin),
        ctx_(ctx) {
    schema_ = left_->schema();
    // The joint schema is only needed (and only well-formed — names may
    // collide otherwise) when a correlated residual predicate exists.
    if (n.predicate != nullptr) {
      joint_ = left_->schema().Concat(right_->schema());
    }
  }
  void Open() override {
    right_->Open();
    RtTuple t;
    while (right_->Next(&t)) {
      table_[MakeKey(node_->right_keys, right_->schema(), t)].push_back(t);
    }
    right_->Close();
    left_->Open();
  }
  bool Next(RtTuple* out) override {
    while (left_->Next(out)) {
      bool exists = false;
      auto it = table_.find(MakeKey(node_->left_keys, left_->schema(), *out));
      if (it != table_.end()) {
        if (node_->predicate == nullptr) {
          exists = true;
        } else {
          for (const RtTuple& r : it->second) {
            RtTuple joint = *out;
            joint.insert(joint.end(), r.begin(), r.end());
            if (AsI64(EvalExpr(node_->predicate, joint_, joint, *ctx_)) !=
                0) {
              exists = true;
              break;
            }
          }
        }
      }
      if (exists != anti_) return true;
    }
    return false;
  }
  void Close() override {
    left_->Close();
    table_.clear();
  }

 private:
  std::unique_ptr<Op> left_;
  std::unique_ptr<Op> right_;
  const plan::PlanNode* node_;
  bool anti_;
  ExecContext* ctx_;
  Schema joint_;
  std::map<Key, std::vector<RtTuple>, KeyLess> table_;
};

/// Left outer "group join": left tuple + number of right matches.
class LeftCountJoinOp final : public Op {
 public:
  LeftCountJoinOp(const plan::PlanNode& n, std::unique_ptr<Op> left,
                  std::unique_ptr<Op> right)
      : left_(std::move(left)), right_(std::move(right)), node_(&n) {
    schema_ = left_->schema();
    schema_.Add({n.count_name, FieldKind::kInt64});
  }
  void Open() override {
    right_->Open();
    RtTuple t;
    while (right_->Next(&t)) {
      ++counts_[MakeKey(node_->right_keys, right_->schema(), t)];
    }
    right_->Close();
    left_->Open();
  }
  bool Next(RtTuple* out) override {
    if (!left_->Next(out)) return false;
    auto it = counts_.find(MakeKey(node_->left_keys, left_->schema(), *out));
    out->push_back(it == counts_.end() ? int64_t{0} : it->second);
    return true;
  }
  void Close() override {
    left_->Close();
    counts_.clear();
  }

 private:
  std::unique_ptr<Op> left_;
  std::unique_ptr<Op> right_;
  const plan::PlanNode* node_;
  std::map<Key, int64_t, KeyLess> counts_;
};

struct AggState {
  std::vector<RtVal> accs;
  std::vector<bool> seen;
};

class AggOpBase : public Op {
 public:
  AggOpBase(const plan::PlanNode& n, std::unique_ptr<Op> child,
            ExecContext* ctx)
      : child_(std::move(child)), node_(&n), ctx_(ctx) {}

 protected:
  void InitState(AggState* st) const {
    st->accs.assign(node_->aggs.size(), int64_t{0});
    st->seen.assign(node_->aggs.size(), false);
  }

  void Accumulate(const RtTuple& in, AggState* st) const {
    const Schema& is = child_->schema();
    for (size_t i = 0; i < node_->aggs.size(); ++i) {
      const auto& a = node_->aggs[i];
      RtVal& acc = st->accs[i];
      switch (a.kind) {
        case AggKind::kCountStar:
          acc = AsI64(acc) + 1;
          break;
        case AggKind::kSum: {
          RtVal v = EvalExpr(a.expr, is, in, *ctx_);
          if (!st->seen[i]) {
            acc = v;
          } else {
            acc = Arith(ExprOp::kAdd, acc, v);
          }
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax: {
          RtVal v = EvalExpr(a.expr, is, in, *ctx_);
          if (!st->seen[i]) {
            acc = v;
          } else {
            int c = Compare(v, acc);
            if ((a.kind == AggKind::kMin && c < 0) ||
                (a.kind == AggKind::kMax && c > 0)) {
              acc = v;
            }
          }
          break;
        }
      }
      st->seen[i] = true;
    }
  }

  std::unique_ptr<Op> child_;
  const plan::PlanNode* node_;
  ExecContext* ctx_;
};

class GroupAggOp final : public AggOpBase {
 public:
  GroupAggOp(const plan::PlanNode& n, std::unique_ptr<Op> child,
             ExecContext* ctx)
      : AggOpBase(n, std::move(child), ctx) {
    const Schema& is = child_->schema();
    for (size_t i = 0; i < n.group_exprs.size(); ++i) {
      schema_.Add({n.group_names[i], InferKind(n.group_exprs[i], is)});
    }
    for (const auto& a : n.aggs) {
      FieldKind k = a.kind == AggKind::kCountStar
                        ? FieldKind::kInt64
                        : InferKind(a.expr, is);
      schema_.Add({a.out_name, k});
    }
  }
  void Open() override {
    child_->Open();
    RtTuple in;
    while (child_->Next(&in)) {
      Key key;
      key.reserve(node_->group_exprs.size());
      for (const auto& g : node_->group_exprs) {
        key.push_back(EvalExpr(g, child_->schema(), in, *ctx_));
      }
      auto [it, inserted] = groups_.try_emplace(std::move(key));
      if (inserted) InitState(&it->second);
      Accumulate(in, &it->second);
    }
    child_->Close();
    it_ = groups_.begin();
  }
  bool Next(RtTuple* out) override {
    if (it_ == groups_.end()) return false;
    *out = it_->first;
    out->insert(out->end(), it_->second.accs.begin(), it_->second.accs.end());
    ++it_;
    return true;
  }
  void Close() override { groups_.clear(); }

 private:
  std::map<Key, AggState, KeyLess> groups_;
  std::map<Key, AggState, KeyLess>::iterator it_;
};

class ScalarAggOp final : public AggOpBase {
 public:
  ScalarAggOp(const plan::PlanNode& n, std::unique_ptr<Op> child,
              ExecContext* ctx)
      : AggOpBase(n, std::move(child), ctx) {
    const Schema& is = child_->schema();
    for (const auto& a : n.aggs) {
      FieldKind k = a.kind == AggKind::kCountStar
                        ? FieldKind::kInt64
                        : InferKind(a.expr, is);
      schema_.Add({a.out_name, k});
    }
  }
  void Open() override {
    child_->Open();
    InitState(&state_);
    RtTuple in;
    while (child_->Next(&in)) Accumulate(in, &state_);
    child_->Close();
    done_ = false;
  }
  bool Next(RtTuple* out) override {
    if (done_) return false;
    done_ = true;
    *out = state_.accs;
    return true;
  }
  void Close() override {}

 private:
  AggState state_;
  bool done_ = false;
};

class SortOp final : public Op {
 public:
  SortOp(const plan::PlanNode& n, std::unique_ptr<Op> child)
      : child_(std::move(child)), node_(&n) {
    schema_ = child_->schema();
  }
  void Open() override {
    child_->Open();
    rows_.clear();
    RtTuple t;
    while (child_->Next(&t)) rows_.push_back(t);
    child_->Close();
    std::vector<int> idx;
    for (const auto& k : node_->sort_keys) {
      idx.push_back(schema_.IndexOf(k.name));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const RtTuple& a, const RtTuple& b) {
                       for (size_t i = 0; i < idx.size(); ++i) {
                         int c = Compare(a[static_cast<size_t>(idx[i])],
                                         b[static_cast<size_t>(idx[i])]);
                         if (c != 0) {
                           return node_->sort_keys[i].asc ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    pos_ = 0;
  }
  bool Next(RtTuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  void Close() override { rows_.clear(); }

 private:
  std::unique_ptr<Op> child_;
  const plan::PlanNode* node_;
  std::vector<RtTuple> rows_;
  size_t pos_ = 0;
};

class LimitOp final : public Op {
 public:
  LimitOp(const plan::PlanNode& n, std::unique_ptr<Op> child)
      : child_(std::move(child)), limit_(n.limit) {
    schema_ = child_->schema();
  }
  void Open() override {
    child_->Open();
    count_ = 0;
  }
  bool Next(RtTuple* out) override {
    if (count_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++count_;
    return true;
  }
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Op> child_;
  int64_t limit_;
  int64_t count_ = 0;
};

}  // namespace

std::unique_ptr<Op> BuildOp(const PlanRef& p, ExecContext* ctx) {
  switch (p->type) {
    case OpType::kScan:
      return std::make_unique<ScanOp>(*p, ctx);
    case OpType::kSelect:
      return std::make_unique<SelectOp>(*p, BuildOp(p->children[0], ctx),
                                        ctx);
    case OpType::kProject:
      return std::make_unique<ProjectOp>(*p, BuildOp(p->children[0], ctx),
                                         ctx);
    case OpType::kHashJoin:
      return std::make_unique<HashJoinOp>(*p, BuildOp(p->children[0], ctx),
                                          BuildOp(p->children[1], ctx), ctx);
    case OpType::kSemiJoin:
    case OpType::kAntiJoin:
      return std::make_unique<SemiAntiJoinOp>(
          *p, BuildOp(p->children[0], ctx), BuildOp(p->children[1], ctx),
          ctx);
    case OpType::kLeftCountJoin:
      return std::make_unique<LeftCountJoinOp>(
          *p, BuildOp(p->children[0], ctx), BuildOp(p->children[1], ctx));
    case OpType::kGroupAgg:
      return std::make_unique<GroupAggOp>(*p, BuildOp(p->children[0], ctx),
                                          ctx);
    case OpType::kScalarAgg:
      return std::make_unique<ScalarAggOp>(*p, BuildOp(p->children[0], ctx),
                                           ctx);
    case OpType::kSort:
      return std::make_unique<SortOp>(*p, BuildOp(p->children[0], ctx));
    case OpType::kLimit:
      return std::make_unique<LimitOp>(*p, BuildOp(p->children[0], ctx));
  }
  LB2_CHECK(false);
  return nullptr;
}

std::string FormatTuple(const RtTuple& t, const Schema& s) {
  std::string out;
  for (int i = 0; i < s.size(); ++i) {
    if (i > 0) out += '|';
    const RtVal& v = t[static_cast<size_t>(i)];
    switch (s.field(i).kind) {
      case FieldKind::kInt64:
        out += std::to_string(AsI64(v));
        break;
      case FieldKind::kDouble:
        out += FormatDouble(AsF64(v));
        break;
      case FieldKind::kDate:
        out += DateToString(static_cast<int32_t>(AsI64(v)));
        break;
      case FieldKind::kString:
        out += AsStr(v);
        break;
    }
  }
  out += '\n';
  return out;
}

std::string Execute(const plan::Query& q, const rt::Database& db) {
  plan::ValidateQuery(q, db);
  ExecContext ctx;
  ctx.db = &db;
  for (const auto& sub : q.scalar_subqueries) {
    ExecContext sub_ctx;
    sub_ctx.db = &db;
    auto op = BuildOp(sub, &sub_ctx);
    op->Open();
    RtTuple t;
    LB2_CHECK_MSG(op->Next(&t), "scalar subquery produced no row");
    ctx.scalars.push_back(AsF64(t[0]));
    RtTuple extra;
    LB2_CHECK_MSG(!op->Next(&extra), "scalar subquery produced >1 row");
    op->Close();
  }
  auto root = BuildOp(q.root, &ctx);
  std::string out;
  root->Open();
  RtTuple t;
  while (root->Next(&t)) out += FormatTuple(t, root->schema());
  root->Close();
  return out;
}

}  // namespace lb2::volcano
