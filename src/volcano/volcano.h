// The iterator (Volcano) execution model — Figure 3 of the paper.
//
// A classic pull-based, tuple-at-a-time interpreter over the shared physical
// plan representation: every operator implements Open/Next/Close, tuples are
// boxed vectors of variant values, and expression evaluation dispatches on
// the expression tree for every row. This engine plays the role of the
// interpreted baseline (Postgres in the paper's Figure 8) and serves as the
// reference oracle the compiled engines are differentially tested against.
#ifndef LB2_VOLCANO_VOLCANO_H_
#define LB2_VOLCANO_VOLCANO_H_

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "plan/plan.h"
#include "plan/validate.h"
#include "runtime/database.h"

namespace lb2::volcano {

/// A runtime value: int64 (also bools 0/1 and dates yyyymmdd), double, or a
/// string view into the loaded database / a dictionary.
using RtVal = std::variant<int64_t, double, std::string_view>;

/// A materialized tuple.
using RtTuple = std::vector<RtVal>;

/// Evaluation context shared by the operator tree: the database and any
/// precomputed scalar-subquery results.
struct ExecContext {
  const rt::Database* db = nullptr;
  std::vector<double> scalars;
};

/// Abstract Volcano operator (Figure 3d).
class Op {
 public:
  virtual ~Op() = default;
  virtual void Open() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual bool Next(RtTuple* out) = 0;
  virtual void Close() = 0;
  const schema::Schema& schema() const { return schema_; }

 protected:
  schema::Schema schema_;
};

/// Evaluates `e` against a tuple of `input` shape. Exposed for tests.
RtVal EvalExpr(const plan::ExprRef& e, const schema::Schema& input,
               const RtTuple& tuple, const ExecContext& ctx);

/// Builds the operator tree for a plan. Exposed for tests; most callers use
/// Execute().
std::unique_ptr<Op> BuildOp(const plan::PlanRef& p, ExecContext* ctx);

/// Runs a query start to finish and returns the '|'-separated result text
/// (one line per row; doubles with 4 decimals, dates as YYYY-MM-DD).
std::string Execute(const plan::Query& q, const rt::Database& db);

/// Formats one tuple the way all engines print results.
std::string FormatTuple(const RtTuple& t, const schema::Schema& s);

}  // namespace lb2::volcano

#endif  // LB2_VOLCANO_VOLCANO_H_
