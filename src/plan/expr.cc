#include "plan/expr.h"

#include "util/check.h"
#include "util/str.h"

namespace lb2::plan {

namespace {

ExprRef Make(ExprOp op, std::vector<ExprRef> children = {}) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  e->children = std::move(children);
  return e;
}

}  // namespace

ExprRef Col(const std::string& name) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kColRef;
  e->str = name;
  return e;
}

ExprRef I(int64_t v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kIntConst;
  e->i64 = v;
  return e;
}

ExprRef D(double v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kDoubleConst;
  e->f64 = v;
  return e;
}

ExprRef S(const std::string& v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kStrConst;
  e->str = v;
  return e;
}

ExprRef B(bool v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kBoolConst;
  e->i64 = v ? 1 : 0;
  return e;
}

ExprRef Dt(const std::string& iso) { return DtRaw(ParseDate(iso)); }

ExprRef DtRaw(int64_t yyyymmdd) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kDateConst;
  e->i64 = yyyymmdd;
  return e;
}

ExprRef Add(ExprRef a, ExprRef b) { return Make(ExprOp::kAdd, {a, b}); }
ExprRef Sub(ExprRef a, ExprRef b) { return Make(ExprOp::kSub, {a, b}); }
ExprRef Mul(ExprRef a, ExprRef b) { return Make(ExprOp::kMul, {a, b}); }
ExprRef Div(ExprRef a, ExprRef b) { return Make(ExprOp::kDiv, {a, b}); }

ExprRef Eq(ExprRef a, ExprRef b) { return Make(ExprOp::kEq, {a, b}); }
ExprRef Ne(ExprRef a, ExprRef b) { return Make(ExprOp::kNe, {a, b}); }
ExprRef Lt(ExprRef a, ExprRef b) { return Make(ExprOp::kLt, {a, b}); }
ExprRef Le(ExprRef a, ExprRef b) { return Make(ExprOp::kLe, {a, b}); }
ExprRef Gt(ExprRef a, ExprRef b) { return Make(ExprOp::kGt, {a, b}); }
ExprRef Ge(ExprRef a, ExprRef b) { return Make(ExprOp::kGe, {a, b}); }

ExprRef And(ExprRef a, ExprRef b) { return Make(ExprOp::kAnd, {a, b}); }
ExprRef Or(ExprRef a, ExprRef b) { return Make(ExprOp::kOr, {a, b}); }
ExprRef Not(ExprRef a) { return Make(ExprOp::kNot, {a}); }

ExprRef And(std::vector<ExprRef> cs) {
  LB2_CHECK(!cs.empty());
  ExprRef acc = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) acc = And(acc, cs[i]);
  return acc;
}

ExprRef Or(std::vector<ExprRef> cs) {
  LB2_CHECK(!cs.empty());
  ExprRef acc = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) acc = Or(acc, cs[i]);
  return acc;
}

ExprRef Between(ExprRef x, ExprRef lo, ExprRef hi) {
  return And(Ge(x, lo), Le(x, hi));
}

namespace {

ExprRef StrOp(ExprOp op, ExprRef s, const std::string& lit) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  e->children = {s};
  e->str = lit;
  return e;
}

}  // namespace

ExprRef StartsWith(ExprRef s, const std::string& p) {
  return StrOp(ExprOp::kStartsWith, s, p);
}
ExprRef EndsWith(ExprRef s, const std::string& p) {
  return StrOp(ExprOp::kEndsWith, s, p);
}
ExprRef Contains(ExprRef s, const std::string& p) {
  return StrOp(ExprOp::kContains, s, p);
}

ExprRef Like(ExprRef s, const std::string& pattern) {
  // Lower the three common shapes at plan-build time — this is static
  // information, so the general matcher never reaches generated code for
  // them (cf. paper §4.3 on dictionary-aware string operations).
  size_t n = pattern.size();
  bool inner_wild =
      pattern.find_first_of("%_", 1) < n - 1;  // wildcards strictly inside
  if (n >= 2 && pattern.back() == '%' && pattern.front() != '%' &&
      !inner_wild && pattern.find('_') == std::string::npos) {
    return StartsWith(s, pattern.substr(0, n - 1));
  }
  if (n >= 2 && pattern.front() == '%' && pattern.back() != '%' &&
      !inner_wild && pattern.find('_') == std::string::npos) {
    return EndsWith(s, pattern.substr(1));
  }
  if (n >= 3 && pattern.front() == '%' && pattern.back() == '%' &&
      pattern.find_first_of("%_", 1) == n - 1) {
    return Contains(s, pattern.substr(1, n - 2));
  }
  return StrOp(ExprOp::kLike, s, pattern);
}

ExprRef NotLike(ExprRef s, const std::string& pattern) {
  return Not(Like(s, pattern));
}

ExprRef InStr(ExprRef s, std::vector<std::string> values) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kInStr;
  e->children = {s};
  e->str_list = std::move(values);
  return e;
}

ExprRef InInt(ExprRef s, std::vector<int64_t> values) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kInInt;
  e->children = {s};
  e->int_list = std::move(values);
  return e;
}

ExprRef Case(ExprRef cond, ExprRef then, ExprRef els) {
  return Make(ExprOp::kCase, {cond, then, els});
}

ExprRef Year(ExprRef date) { return Make(ExprOp::kYear, {date}); }

ExprRef Substring(ExprRef s, int64_t pos, int64_t len) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kSubstring;
  e->children = {s};
  e->i64 = pos;
  e->i64b = len;
  return e;
}

ExprRef ScalarRef(int64_t index) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kScalarRef;
  e->i64 = index;
  return e;
}

schema::FieldKind InferKind(const ExprRef& e, const schema::Schema& input) {
  using K = schema::FieldKind;
  switch (e->op) {
    case ExprOp::kColRef: return input.Get(e->str).kind;
    case ExprOp::kIntConst: return K::kInt64;
    case ExprOp::kDoubleConst: return K::kDouble;
    case ExprOp::kStrConst: return K::kString;
    case ExprOp::kBoolConst: return K::kInt64;
    case ExprOp::kDateConst: return K::kDate;
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      K a = InferKind(e->children[0], input);
      K b = InferKind(e->children[1], input);
      LB2_CHECK_MSG(a != K::kString && b != K::kString,
                    "arithmetic on strings");
      if (e->op == ExprOp::kDiv) return K::kDouble;
      return (a == K::kDouble || b == K::kDouble) ? K::kDouble : K::kInt64;
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
    case ExprOp::kLike:
    case ExprOp::kNotLike:
    case ExprOp::kStartsWith:
    case ExprOp::kEndsWith:
    case ExprOp::kContains:
    case ExprOp::kInStr:
    case ExprOp::kInInt:
      return K::kInt64;  // booleans are int64 0/1 at the plan level
    case ExprOp::kCase: {
      K t = InferKind(e->children[1], input);
      K f = InferKind(e->children[2], input);
      if (t == f) return t;
      LB2_CHECK_MSG(t != K::kString && f != K::kString,
                    "CASE branches mix string and non-string");
      return K::kDouble;
    }
    case ExprOp::kYear: return K::kInt64;
    case ExprOp::kSubstring: return K::kString;
    case ExprOp::kScalarRef: return K::kDouble;  // scalar subqueries: numeric
  }
  LB2_CHECK(false);
  return K::kInt64;
}

std::string ExprToString(const ExprRef& e) {
  switch (e->op) {
    case ExprOp::kColRef: return e->str;
    case ExprOp::kIntConst: return std::to_string(e->i64);
    case ExprOp::kDoubleConst: return FormatDouble(e->f64);
    case ExprOp::kStrConst: return "'" + e->str + "'";
    case ExprOp::kBoolConst: return e->i64 ? "true" : "false";
    case ExprOp::kDateConst: return DateToString(static_cast<int32_t>(e->i64));
    case ExprOp::kAdd:
      return "(" + ExprToString(e->children[0]) + " + " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kSub:
      return "(" + ExprToString(e->children[0]) + " - " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kMul:
      return "(" + ExprToString(e->children[0]) + " * " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kDiv:
      return "(" + ExprToString(e->children[0]) + " / " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kEq:
      return "(" + ExprToString(e->children[0]) + " = " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kNe:
      return "(" + ExprToString(e->children[0]) + " <> " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kLt:
      return "(" + ExprToString(e->children[0]) + " < " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kLe:
      return "(" + ExprToString(e->children[0]) + " <= " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kGt:
      return "(" + ExprToString(e->children[0]) + " > " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kGe:
      return "(" + ExprToString(e->children[0]) + " >= " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kAnd:
      return "(" + ExprToString(e->children[0]) + " and " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kOr:
      return "(" + ExprToString(e->children[0]) + " or " +
             ExprToString(e->children[1]) + ")";
    case ExprOp::kNot: return "not " + ExprToString(e->children[0]);
    case ExprOp::kLike:
      return ExprToString(e->children[0]) + " like '" + e->str + "'";
    case ExprOp::kNotLike:
      return ExprToString(e->children[0]) + " not like '" + e->str + "'";
    case ExprOp::kStartsWith:
      return ExprToString(e->children[0]) + " like '" + e->str + "%'";
    case ExprOp::kEndsWith:
      return ExprToString(e->children[0]) + " like '%" + e->str + "'";
    case ExprOp::kContains:
      return ExprToString(e->children[0]) + " like '%" + e->str + "%'";
    case ExprOp::kInStr: {
      std::string out = ExprToString(e->children[0]) + " in (";
      for (size_t i = 0; i < e->str_list.size(); ++i) {
        if (i) out += ", ";
        out += "'" + e->str_list[i] + "'";
      }
      return out + ")";
    }
    case ExprOp::kInInt: {
      std::string out = ExprToString(e->children[0]) + " in (";
      for (size_t i = 0; i < e->int_list.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(e->int_list[i]);
      }
      return out + ")";
    }
    case ExprOp::kCase:
      return "case when " + ExprToString(e->children[0]) + " then " +
             ExprToString(e->children[1]) + " else " +
             ExprToString(e->children[2]) + " end";
    case ExprOp::kYear:
      return "year(" + ExprToString(e->children[0]) + ")";
    case ExprOp::kSubstring:
      return "substring(" + ExprToString(e->children[0]) + ", " +
             std::to_string(e->i64 + 1) + ", " + std::to_string(e->i64b) + ")";
    case ExprOp::kScalarRef:
      return "$scalar" + std::to_string(e->i64);
  }
  return "?";
}

}  // namespace lb2::plan
