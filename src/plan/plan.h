// Physical plan nodes. The plan is the *static input* of the Futamura
// projection: every engine in the repository — Volcano interpreter,
// data-centric interpreter, template-expansion compiler, LB2 compiler —
// consumes exactly this representation.
#ifndef LB2_PLAN_PLAN_H_
#define LB2_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/expr.h"
#include "schema/schema.h"

namespace lb2::plan {

enum class OpType {
  kScan,           // base table (optionally via a date index)
  kSelect,         // filter
  kProject,        // expressions -> named columns
  kHashJoin,       // inner equi-join, builds on the LEFT child
  kSemiJoin,       // left rows with >=1 right match (builds on the RIGHT)
  kAntiJoin,       // left rows with no right match
  kLeftCountJoin,  // left outer "group join": left row + match count
  kGroupAgg,       // hash group-by with aggregates
  kScalarAgg,      // aggregates without grouping (single output row)
  kSort,           // order by
  kLimit,          // first N rows
};

enum class AggKind { kSum, kMin, kMax, kCountStar };

struct AggSpec {
  AggKind kind;
  ExprRef expr;          // ignored for kCountStar
  std::string out_name;
};

struct SortKey {
  std::string name;
  bool asc = true;
};

/// How an equi-join is executed (paper §4.3: index joins are a *plan-level*
/// decision in LB2, not inferred from low-level code as in DBLAB).
enum class JoinImpl {
  kHash,     // build a hash table from the build-side pipeline
  kPkIndex,  // unique-key index on the build side's base table
  kFkIndex,  // multimap index on the build side's base table
};

struct PlanNode;
using PlanRef = std::shared_ptr<const PlanNode>;

struct PlanNode {
  OpType type;
  std::vector<PlanRef> children;

  // kScan
  std::string table;
  /// When set, scan through the month-bucketed date index on this column,
  /// restricted to buckets intersecting [date_lo, date_hi] (yyyymmdd).
  std::string date_index_col;
  int64_t date_lo = 0, date_hi = 0;

  // kSelect, and optional residual predicate for joins (evaluated on the
  // concatenated left++right record).
  ExprRef predicate;

  // kProject
  std::vector<ExprRef> exprs;
  std::vector<std::string> names;

  // joins: equi-key column names, pairwise
  std::vector<std::string> left_keys, right_keys;
  JoinImpl join_impl = JoinImpl::kHash;
  std::string count_name;  // kLeftCountJoin output column

  // kGroupAgg / kScalarAgg
  std::vector<ExprRef> group_exprs;
  std::vector<std::string> group_names;
  std::vector<AggSpec> aggs;
  /// Upper bound on distinct groups (sizes the open-addressing table);
  /// 0 means "use the input row bound".
  int64_t capacity_hint = 0;
  /// Alternative bound: the row count of this base table at compile time
  /// (e.g. group-by-custkey is bounded by |customer|). Combined with
  /// capacity_hint by taking the minimum of all applicable bounds.
  std::string capacity_hint_table;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = 0;
};

// -- Plan construction helpers ----------------------------------------------

PlanRef Scan(const std::string& table);
PlanRef ScanDateIdx(const std::string& table, const std::string& date_col,
                    int64_t date_lo, int64_t date_hi);
PlanRef Filter(PlanRef child, ExprRef pred);
PlanRef Project(PlanRef child, std::vector<std::string> names,
                std::vector<ExprRef> exprs);
/// Projection keeping the given input columns (optionally renamed via
/// "new=old" entries).
PlanRef KeepCols(PlanRef child, const std::vector<std::string>& cols);
PlanRef Join(PlanRef build_left, PlanRef probe_right,
             std::vector<std::string> left_keys,
             std::vector<std::string> right_keys, ExprRef residual = nullptr,
             JoinImpl impl = JoinImpl::kHash);
PlanRef SemiJoin(PlanRef keep_left, PlanRef exists_right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys,
                 ExprRef residual = nullptr, JoinImpl impl = JoinImpl::kHash);
PlanRef AntiJoin(PlanRef keep_left, PlanRef absent_right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys,
                 ExprRef residual = nullptr, JoinImpl impl = JoinImpl::kHash);
PlanRef LeftCountJoin(PlanRef left, PlanRef right,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys,
                      const std::string& count_name);
PlanRef GroupBy(PlanRef child, std::vector<std::string> group_names,
                std::vector<ExprRef> group_exprs, std::vector<AggSpec> aggs,
                int64_t capacity_hint = 0,
                const std::string& capacity_hint_table = "");
PlanRef ScalarAggPlan(PlanRef child, std::vector<AggSpec> aggs);
PlanRef OrderBy(PlanRef child, std::vector<SortKey> keys);
PlanRef Limit(PlanRef child, int64_t n);

inline AggSpec Sum(ExprRef e, const std::string& name) {
  return {AggKind::kSum, std::move(e), name};
}
inline AggSpec Min(ExprRef e, const std::string& name) {
  return {AggKind::kMin, std::move(e), name};
}
inline AggSpec Max(ExprRef e, const std::string& name) {
  return {AggKind::kMax, std::move(e), name};
}
inline AggSpec CountStar(const std::string& name) {
  return {AggKind::kCountStar, nullptr, name};
}

/// A complete query: optional scalar subqueries (evaluated first, usable in
/// the main plan via ScalarRef(i)), then the main plan whose output is
/// printed column by column, '|'-separated.
struct Query {
  std::vector<PlanRef> scalar_subqueries;  // each must be a 1-row plan
  PlanRef root;
};

/// Renders the operator tree (indented, one op per line) for tests/EXPLAIN.
std::string PlanToString(const PlanRef& p, int indent = 0);

}  // namespace lb2::plan

#endif  // LB2_PLAN_PLAN_H_
