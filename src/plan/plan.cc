#include "plan/plan.h"

#include "util/check.h"
#include "util/str.h"

namespace lb2::plan {

namespace {

std::shared_ptr<PlanNode> Make(OpType type, std::vector<PlanRef> children) {
  auto n = std::make_shared<PlanNode>();
  n->type = type;
  n->children = std::move(children);
  return n;
}

}  // namespace

PlanRef Scan(const std::string& table) {
  auto n = Make(OpType::kScan, {});
  n->table = table;
  return n;
}

PlanRef ScanDateIdx(const std::string& table, const std::string& date_col,
                    int64_t date_lo, int64_t date_hi) {
  auto n = Make(OpType::kScan, {});
  n->table = table;
  n->date_index_col = date_col;
  n->date_lo = date_lo;
  n->date_hi = date_hi;
  return n;
}

PlanRef Filter(PlanRef child, ExprRef pred) {
  auto n = Make(OpType::kSelect, {std::move(child)});
  n->predicate = std::move(pred);
  return n;
}

PlanRef Project(PlanRef child, std::vector<std::string> names,
                std::vector<ExprRef> exprs) {
  LB2_CHECK(names.size() == exprs.size());
  auto n = Make(OpType::kProject, {std::move(child)});
  n->names = std::move(names);
  n->exprs = std::move(exprs);
  return n;
}

PlanRef KeepCols(PlanRef child, const std::vector<std::string>& cols) {
  std::vector<std::string> names;
  std::vector<ExprRef> exprs;
  for (const auto& c : cols) {
    size_t eq = c.find('=');
    if (eq == std::string::npos) {
      names.push_back(c);
      exprs.push_back(Col(c));
    } else {
      names.push_back(c.substr(0, eq));
      exprs.push_back(Col(c.substr(eq + 1)));
    }
  }
  return Project(std::move(child), std::move(names), std::move(exprs));
}

namespace {

PlanRef MakeJoin(OpType type, PlanRef l, PlanRef r,
                 std::vector<std::string> lk, std::vector<std::string> rk,
                 ExprRef residual, JoinImpl impl) {
  LB2_CHECK(lk.size() == rk.size() && !lk.empty());
  auto n = Make(type, {std::move(l), std::move(r)});
  n->left_keys = std::move(lk);
  n->right_keys = std::move(rk);
  n->predicate = std::move(residual);
  n->join_impl = impl;
  return n;
}

}  // namespace

PlanRef Join(PlanRef l, PlanRef r, std::vector<std::string> lk,
             std::vector<std::string> rk, ExprRef residual, JoinImpl impl) {
  return MakeJoin(OpType::kHashJoin, std::move(l), std::move(r),
                  std::move(lk), std::move(rk), std::move(residual), impl);
}

PlanRef SemiJoin(PlanRef l, PlanRef r, std::vector<std::string> lk,
                 std::vector<std::string> rk, ExprRef residual,
                 JoinImpl impl) {
  return MakeJoin(OpType::kSemiJoin, std::move(l), std::move(r),
                  std::move(lk), std::move(rk), std::move(residual), impl);
}

PlanRef AntiJoin(PlanRef l, PlanRef r, std::vector<std::string> lk,
                 std::vector<std::string> rk, ExprRef residual,
                 JoinImpl impl) {
  return MakeJoin(OpType::kAntiJoin, std::move(l), std::move(r),
                  std::move(lk), std::move(rk), std::move(residual), impl);
}

PlanRef LeftCountJoin(PlanRef l, PlanRef r, std::vector<std::string> lk,
                      std::vector<std::string> rk,
                      const std::string& count_name) {
  auto n = MakeJoin(OpType::kLeftCountJoin, std::move(l), std::move(r),
                    std::move(lk), std::move(rk), nullptr, JoinImpl::kHash);
  const_cast<PlanNode*>(n.get())->count_name = count_name;
  return n;
}

PlanRef GroupBy(PlanRef child, std::vector<std::string> group_names,
                std::vector<ExprRef> group_exprs, std::vector<AggSpec> aggs,
                int64_t capacity_hint,
                const std::string& capacity_hint_table) {
  LB2_CHECK(group_names.size() == group_exprs.size());
  auto n = Make(OpType::kGroupAgg, {std::move(child)});
  n->group_names = std::move(group_names);
  n->group_exprs = std::move(group_exprs);
  n->aggs = std::move(aggs);
  n->capacity_hint = capacity_hint;
  n->capacity_hint_table = capacity_hint_table;
  return n;
}

PlanRef ScalarAggPlan(PlanRef child, std::vector<AggSpec> aggs) {
  auto n = Make(OpType::kScalarAgg, {std::move(child)});
  n->aggs = std::move(aggs);
  return n;
}

PlanRef OrderBy(PlanRef child, std::vector<SortKey> keys) {
  auto n = Make(OpType::kSort, {std::move(child)});
  n->sort_keys = std::move(keys);
  return n;
}

PlanRef Limit(PlanRef child, int64_t count) {
  auto n = Make(OpType::kLimit, {std::move(child)});
  n->limit = count;
  return n;
}

std::string PlanToString(const PlanRef& p, int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string head;
  switch (p->type) {
    case OpType::kScan:
      head = "Scan(" + p->table + ")";
      if (!p->date_index_col.empty()) {
        head += StrPrintf(" via date index %s in [%s, %s]",
                          p->date_index_col.c_str(),
                          DateToString(static_cast<int32_t>(p->date_lo)).c_str(),
                          DateToString(static_cast<int32_t>(p->date_hi)).c_str());
      }
      break;
    case OpType::kSelect:
      head = "Select(" + ExprToString(p->predicate) + ")";
      break;
    case OpType::kProject: {
      head = "Project(";
      for (size_t i = 0; i < p->names.size(); ++i) {
        if (i) head += ", ";
        head += p->names[i];
      }
      head += ")";
      break;
    }
    case OpType::kHashJoin: head = "HashJoin"; break;
    case OpType::kSemiJoin: head = "SemiJoin"; break;
    case OpType::kAntiJoin: head = "AntiJoin"; break;
    case OpType::kLeftCountJoin: head = "LeftCountJoin"; break;
    case OpType::kGroupAgg: head = "GroupAgg"; break;
    case OpType::kScalarAgg: head = "ScalarAgg"; break;
    case OpType::kSort: head = "Sort"; break;
    case OpType::kLimit: head = "Limit(" + std::to_string(p->limit) + ")"; break;
  }
  if (p->type == OpType::kHashJoin || p->type == OpType::kSemiJoin ||
      p->type == OpType::kAntiJoin || p->type == OpType::kLeftCountJoin) {
    head += "(";
    for (size_t i = 0; i < p->left_keys.size(); ++i) {
      if (i) head += ", ";
      head += p->left_keys[i] + "=" + p->right_keys[i];
    }
    head += ")";
    if (p->join_impl == JoinImpl::kPkIndex) head += " [pk-index]";
    if (p->join_impl == JoinImpl::kFkIndex) head += " [fk-index]";
  }
  std::string out = pad + head + "\n";
  for (const auto& c : p->children) out += PlanToString(c, indent + 1);
  return out;
}

}  // namespace lb2::plan
