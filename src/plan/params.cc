#include "plan/params.h"

namespace lb2::plan {

const char* ParamKindName(ParamKind k) {
  switch (k) {
    case ParamKind::kInt: return "int";
    case ParamKind::kDouble: return "double";
    case ParamKind::kStr: return "str";
    case ParamKind::kBool: return "bool";
    case ParamKind::kDate: return "date";
  }
  return "?";
}

}  // namespace lb2::plan
