#include "plan/validate.h"

#include <algorithm>

#include "util/check.h"

namespace lb2::plan {

using schema::FieldKind;
using schema::Schema;

namespace {

FieldKind AggResultKind(const AggSpec& a, const Schema& input) {
  switch (a.kind) {
    case AggKind::kCountStar: return FieldKind::kInt64;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax: {
      FieldKind k = InferKind(a.expr, input);
      LB2_CHECK_MSG(k != FieldKind::kString, "aggregate over strings");
      return k == FieldKind::kDate ? FieldKind::kDate : k;
    }
  }
  return FieldKind::kInt64;
}

void CheckJoinKeys(const PlanNode& n, const Schema& left,
                   const Schema& right) {
  for (size_t i = 0; i < n.left_keys.size(); ++i) {
    const auto& lf = left.Get(n.left_keys[i]);
    const auto& rf = right.Get(n.right_keys[i]);
    LB2_CHECK_MSG(lf.kind == rf.kind, ("join key kind mismatch: " + lf.name +
                                       " vs " + rf.name)
                                          .c_str());
  }
}

}  // namespace

Schema OutputSchema(const PlanRef& p, const rt::Database& db) {
  switch (p->type) {
    case OpType::kScan:
      return db.table(p->table).schema();
    case OpType::kSelect: {
      Schema in = OutputSchema(p->children[0], db);
      LB2_CHECK_MSG(InferKind(p->predicate, in) != FieldKind::kString,
                    "string-valued predicate");
      return in;
    }
    case OpType::kProject: {
      Schema in = OutputSchema(p->children[0], db);
      Schema out;
      for (size_t i = 0; i < p->exprs.size(); ++i) {
        out.Add({p->names[i], InferKind(p->exprs[i], in)});
      }
      return out;
    }
    case OpType::kHashJoin: {
      Schema l = OutputSchema(p->children[0], db);
      Schema r = OutputSchema(p->children[1], db);
      CheckJoinKeys(*p, l, r);
      Schema out = l.Concat(r);
      if (p->predicate) (void)InferKind(p->predicate, out);
      return out;
    }
    case OpType::kSemiJoin:
    case OpType::kAntiJoin: {
      Schema l = OutputSchema(p->children[0], db);
      Schema r = OutputSchema(p->children[1], db);
      CheckJoinKeys(*p, l, r);
      if (p->predicate) (void)InferKind(p->predicate, l.Concat(r));
      return l;
    }
    case OpType::kLeftCountJoin: {
      Schema l = OutputSchema(p->children[0], db);
      Schema r = OutputSchema(p->children[1], db);
      CheckJoinKeys(*p, l, r);
      Schema out = l;
      out.Add({p->count_name, FieldKind::kInt64});
      return out;
    }
    case OpType::kGroupAgg: {
      Schema in = OutputSchema(p->children[0], db);
      Schema out;
      for (size_t i = 0; i < p->group_exprs.size(); ++i) {
        out.Add({p->group_names[i], InferKind(p->group_exprs[i], in)});
      }
      for (const auto& a : p->aggs) {
        out.Add({a.out_name, AggResultKind(a, in)});
      }
      return out;
    }
    case OpType::kScalarAgg: {
      Schema in = OutputSchema(p->children[0], db);
      Schema out;
      for (const auto& a : p->aggs) {
        out.Add({a.out_name, AggResultKind(a, in)});
      }
      return out;
    }
    case OpType::kSort: {
      Schema in = OutputSchema(p->children[0], db);
      for (const auto& k : p->sort_keys) (void)in.Get(k.name);
      return in;
    }
    case OpType::kLimit:
      return OutputSchema(p->children[0], db);
  }
  LB2_CHECK(false);
  return {};
}

int64_t RowBound(const PlanRef& p, const rt::Database& db) {
  switch (p->type) {
    case OpType::kScan:
      return db.table(p->table).num_rows();
    case OpType::kSelect:
    case OpType::kProject:
    case OpType::kSort:
      return RowBound(p->children[0], db);
    case OpType::kLimit:
      return std::min(p->limit, RowBound(p->children[0], db));
    case OpType::kSemiJoin:
    case OpType::kAntiJoin:
    case OpType::kLeftCountJoin:
      return RowBound(p->children[0], db);
    case OpType::kHashJoin:
      // Key-foreign-key equi-joins (all of TPC-H) produce at most one match
      // per probe row per build key; the sum of both sides dominates that.
      return RowBound(p->children[0], db) + RowBound(p->children[1], db);
    case OpType::kGroupAgg: {
      int64_t bound = RowBound(p->children[0], db);
      if (p->capacity_hint > 0) bound = std::min(bound, p->capacity_hint);
      if (!p->capacity_hint_table.empty()) {
        bound = std::min(bound, db.table(p->capacity_hint_table).num_rows());
      }
      return bound;
    }
    case OpType::kScalarAgg:
      return 1;
  }
  LB2_CHECK(false);
  return 0;
}

void ValidateQuery(const Query& q, const rt::Database& db) {
  for (const auto& sub : q.scalar_subqueries) {
    Schema s = OutputSchema(sub, db);
    LB2_CHECK_MSG(s.size() == 1, "scalar subquery must have one column");
    LB2_CHECK_MSG(s.field(0).kind == FieldKind::kInt64 ||
                      s.field(0).kind == FieldKind::kDouble,
                  "scalar subquery must be numeric");
  }
  (void)OutputSchema(q.root, db);
}

}  // namespace lb2::plan
