// Schema inference and structural validation of physical plans. Run once
// before execution/compilation; all engines rely on the inferred schemas.
#ifndef LB2_PLAN_VALIDATE_H_
#define LB2_PLAN_VALIDATE_H_

#include "plan/plan.h"
#include "runtime/database.h"
#include "schema/schema.h"

namespace lb2::plan {

/// Output schema of `p` against the given database's base tables. Aborts
/// (with a message naming the offending op) on type or name errors, so a
/// plan that validates can be staged without generating ill-typed C.
schema::Schema OutputSchema(const PlanRef& p, const rt::Database& db);

/// Upper bound on the number of rows `p` can produce — used to size the
/// (non-growing, open-addressing) hash tables the engine specializes.
int64_t RowBound(const PlanRef& p, const rt::Database& db);

/// Validates the whole query, including scalar subqueries (each must
/// produce exactly one numeric column).
void ValidateQuery(const Query& q, const rt::Database& db);

}  // namespace lb2::plan

#endif  // LB2_PLAN_VALIDATE_H_
