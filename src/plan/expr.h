// Scalar expression trees for physical plans.
//
// Expressions are built by the query front-end (tpch/queries.cc or the SQL
// binder) and consumed by every engine: the Volcano interpreter evaluates
// them directly; the LB2 engine evaluates them over staged values, which
// specializes them into straight-line C.
#ifndef LB2_PLAN_EXPR_H_
#define LB2_PLAN_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "schema/schema.h"

namespace lb2::plan {

enum class ExprOp {
  kColRef,      // name
  kIntConst,    // i64
  kDoubleConst, // f64
  kStrConst,    // str
  kBoolConst,   // i64 (0/1)
  kDateConst,   // i64 = yyyymmdd
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kLike,        // str = pattern
  kNotLike,
  kStartsWith,  // str = prefix
  kEndsWith,
  kContains,
  kInStr,       // str_list
  kInInt,       // int_list
  kCase,        // children: cond, then, else
  kYear,        // year(date) -> int64
  kSubstring,   // i64 = 0-based pos, i64b = len (static offsets)
  kScalarRef,   // i64 = index into the query's scalar-subquery results
};

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

struct Expr {
  ExprOp op;
  std::vector<ExprRef> children;

  std::string str;                  // colref name / string const / pattern
  int64_t i64 = 0;
  int64_t i64b = 0;
  double f64 = 0.0;
  std::vector<std::string> str_list;
  std::vector<int64_t> int_list;

  /// Parameter slot for const leaves in a *canonicalized* plan (see
  /// plan/params.h): >= 0 means the engines read this leaf's value from
  /// execution-context parameter slot N instead of baking it into generated
  /// code. The original literal value stays in place, so any evaluator that
  /// ignores the slot (Volcano, an interpreter run without bound params)
  /// still computes the original query. -1 = ordinary literal.
  int64_t param_slot = -1;
};

// -- Factory helpers (the plan-construction vocabulary) ---------------------

ExprRef Col(const std::string& name);
ExprRef I(int64_t v);
ExprRef D(double v);
ExprRef S(const std::string& v);
ExprRef B(bool v);
/// Date literal from "YYYY-MM-DD".
ExprRef Dt(const std::string& iso);
/// Date literal from the int32 yyyymmdd encoding.
ExprRef DtRaw(int64_t yyyymmdd);

ExprRef Add(ExprRef a, ExprRef b);
ExprRef Sub(ExprRef a, ExprRef b);
ExprRef Mul(ExprRef a, ExprRef b);
ExprRef Div(ExprRef a, ExprRef b);

ExprRef Eq(ExprRef a, ExprRef b);
ExprRef Ne(ExprRef a, ExprRef b);
ExprRef Lt(ExprRef a, ExprRef b);
ExprRef Le(ExprRef a, ExprRef b);
ExprRef Gt(ExprRef a, ExprRef b);
ExprRef Ge(ExprRef a, ExprRef b);

ExprRef And(ExprRef a, ExprRef b);
ExprRef And(std::vector<ExprRef> cs);
ExprRef Or(ExprRef a, ExprRef b);
ExprRef Or(std::vector<ExprRef> cs);
ExprRef Not(ExprRef a);
/// a <= x && x <= b (dates and numerics).
ExprRef Between(ExprRef x, ExprRef lo, ExprRef hi);

/// LIKE over a column. Patterns of the form "p%", "%s", "%m%" are
/// recognized at plan-build time and lowered to the cheaper
/// StartsWith/EndsWith/Contains forms; anything else stays a general LIKE.
ExprRef Like(ExprRef s, const std::string& pattern);
ExprRef NotLike(ExprRef s, const std::string& pattern);
ExprRef StartsWith(ExprRef s, const std::string& prefix);
ExprRef EndsWith(ExprRef s, const std::string& suffix);
ExprRef Contains(ExprRef s, const std::string& infix);

ExprRef InStr(ExprRef s, std::vector<std::string> values);
ExprRef InInt(ExprRef s, std::vector<int64_t> values);

ExprRef Case(ExprRef cond, ExprRef then, ExprRef els);
ExprRef Year(ExprRef date);
ExprRef Substring(ExprRef s, int64_t pos, int64_t len);
ExprRef ScalarRef(int64_t index);

/// Result kind of `e` against `input` (aborts on type errors). Date-typed
/// subexpressions participate in comparisons/arithmetic as int64.
schema::FieldKind InferKind(const ExprRef& e, const schema::Schema& input);

/// Human-readable rendering for tests and EXPLAIN-style output.
std::string ExprToString(const ExprRef& e);

}  // namespace lb2::plan

#endif  // LB2_PLAN_EXPR_H_
