// Parameter values for canonicalized ("prepared") plans.
//
// A canonicalizer (service/fingerprint.h: ParameterizeQuery) rewrites a
// query's eligible const leaves to carry a `param_slot` index and extracts
// the literal values into a ParamVec. Both engines then read marked leaves
// through the slot — the staged backend emits `lb2_ctx->params[i]`
// references so the generated TU is byte-identical across literal values,
// and the interpreter reads the bound vector directly. The values here are
// bound at Run(): one compiled artifact serves the whole query family.
#ifndef LB2_PLAN_PARAMS_H_
#define LB2_PLAN_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lb2::plan {

/// Runtime type of one extracted literal. Int and date share the i64
/// payload (dates are yyyymmdd int64s everywhere in the engine); the kind
/// is still recorded separately because it is part of the *shape*: an int
/// literal and a date literal in the same position generate different
/// surrounding code and must not share a fingerprint.
enum class ParamKind : int32_t { kInt, kDouble, kStr, kBool, kDate };

/// One literal hoisted out of a plan. Exactly one payload field is
/// meaningful, per `kind`. Strings are owned here — the bound execution
/// context points into this storage, so a ParamVec must outlive any run it
/// is bound to (the service keeps it on the request stack).
struct ParamValue {
  ParamKind kind = ParamKind::kInt;
  int64_t i64 = 0;   // kInt, kDate, kBool (0/1)
  double f64 = 0.0;  // kDouble (bit pattern preserved: NaN, -0.0)
  std::string str;   // kStr

  bool operator==(const ParamValue& o) const {
    return kind == o.kind && i64 == o.i64 && f64 == o.f64 && str == o.str;
  }
};

using ParamVec = std::vector<ParamValue>;

const char* ParamKindName(ParamKind k);

}  // namespace lb2::plan

#endif  // LB2_PLAN_PARAMS_H_
