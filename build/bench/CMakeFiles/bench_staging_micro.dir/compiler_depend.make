# Empty compiler generated dependencies file for bench_staging_micro.
# This may be replaced when dependencies are built.
