file(REMOVE_RECURSE
  "CMakeFiles/bench_staging_micro.dir/bench_staging_micro.cc.o"
  "CMakeFiles/bench_staging_micro.dir/bench_staging_micro.cc.o.d"
  "bench_staging_micro"
  "bench_staging_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staging_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
