file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_index_opts.dir/bench_fig9_index_opts.cc.o"
  "CMakeFiles/bench_fig9_index_opts.dir/bench_fig9_index_opts.cc.o.d"
  "bench_fig9_index_opts"
  "bench_fig9_index_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_index_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
