file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_volcano_vs_dc.dir/bench_fig4_volcano_vs_dc.cc.o"
  "CMakeFiles/bench_fig4_volcano_vs_dc.dir/bench_fig4_volcano_vs_dc.cc.o.d"
  "bench_fig4_volcano_vs_dc"
  "bench_fig4_volcano_vs_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_volcano_vs_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
