# Empty dependencies file for bench_fig4_volcano_vs_dc.
# This may be replaced when dependencies are built.
