file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_parallel.dir/bench_fig11_parallel.cc.o"
  "CMakeFiles/bench_fig11_parallel.dir/bench_fig11_parallel.cc.o.d"
  "bench_fig11_parallel"
  "bench_fig11_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
