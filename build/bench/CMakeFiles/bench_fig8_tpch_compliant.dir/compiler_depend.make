# Empty compiler generated dependencies file for bench_fig8_tpch_compliant.
# This may be replaced when dependencies are built.
