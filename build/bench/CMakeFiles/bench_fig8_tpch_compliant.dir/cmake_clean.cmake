file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tpch_compliant.dir/bench_fig8_tpch_compliant.cc.o"
  "CMakeFiles/bench_fig8_tpch_compliant.dir/bench_fig8_tpch_compliant.cc.o.d"
  "bench_fig8_tpch_compliant"
  "bench_fig8_tpch_compliant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tpch_compliant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
