# Empty dependencies file for bench_fig10_load_overhead.
# This may be replaced when dependencies are built.
