file(REMOVE_RECURSE
  "CMakeFiles/staging_tour.dir/staging_tour.cpp.o"
  "CMakeFiles/staging_tour.dir/staging_tour.cpp.o.d"
  "staging_tour"
  "staging_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
