# Empty compiler generated dependencies file for staging_tour.
# This may be replaced when dependencies are built.
