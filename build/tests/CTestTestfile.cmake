# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stage_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_dbgen_test[1]_include.cmake")
include("/root/repo/build/tests/volcano_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_queries_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/template_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
