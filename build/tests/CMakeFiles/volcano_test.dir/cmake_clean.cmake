file(REMOVE_RECURSE
  "CMakeFiles/volcano_test.dir/volcano_test.cc.o"
  "CMakeFiles/volcano_test.dir/volcano_test.cc.o.d"
  "volcano_test"
  "volcano_test.pdb"
  "volcano_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
