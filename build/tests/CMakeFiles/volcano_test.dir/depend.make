# Empty dependencies file for volcano_test.
# This may be replaced when dependencies are built.
