# Empty dependencies file for template_compiler_test.
# This may be replaced when dependencies are built.
