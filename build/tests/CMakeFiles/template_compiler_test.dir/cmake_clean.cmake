file(REMOVE_RECURSE
  "CMakeFiles/template_compiler_test.dir/template_compiler_test.cc.o"
  "CMakeFiles/template_compiler_test.dir/template_compiler_test.cc.o.d"
  "template_compiler_test"
  "template_compiler_test.pdb"
  "template_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
