file(REMOVE_RECURSE
  "liblb2.a"
)
