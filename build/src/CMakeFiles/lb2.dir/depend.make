# Empty dependencies file for lb2.
# This may be replaced when dependencies are built.
