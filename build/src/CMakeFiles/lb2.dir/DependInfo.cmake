
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compile/lb2_compiler.cc" "src/CMakeFiles/lb2.dir/compile/lb2_compiler.cc.o" "gcc" "src/CMakeFiles/lb2.dir/compile/lb2_compiler.cc.o.d"
  "/root/repo/src/compile/template_compiler.cc" "src/CMakeFiles/lb2.dir/compile/template_compiler.cc.o" "gcc" "src/CMakeFiles/lb2.dir/compile/template_compiler.cc.o.d"
  "/root/repo/src/engine/exec.cc" "src/CMakeFiles/lb2.dir/engine/exec.cc.o" "gcc" "src/CMakeFiles/lb2.dir/engine/exec.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/CMakeFiles/lb2.dir/plan/expr.cc.o" "gcc" "src/CMakeFiles/lb2.dir/plan/expr.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/lb2.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/lb2.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/validate.cc" "src/CMakeFiles/lb2.dir/plan/validate.cc.o" "gcc" "src/CMakeFiles/lb2.dir/plan/validate.cc.o.d"
  "/root/repo/src/runtime/column.cc" "src/CMakeFiles/lb2.dir/runtime/column.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/column.cc.o.d"
  "/root/repo/src/runtime/database.cc" "src/CMakeFiles/lb2.dir/runtime/database.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/database.cc.o.d"
  "/root/repo/src/runtime/dictionary.cc" "src/CMakeFiles/lb2.dir/runtime/dictionary.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/dictionary.cc.o.d"
  "/root/repo/src/runtime/env.cc" "src/CMakeFiles/lb2.dir/runtime/env.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/env.cc.o.d"
  "/root/repo/src/runtime/index.cc" "src/CMakeFiles/lb2.dir/runtime/index.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/index.cc.o.d"
  "/root/repo/src/runtime/table.cc" "src/CMakeFiles/lb2.dir/runtime/table.cc.o" "gcc" "src/CMakeFiles/lb2.dir/runtime/table.cc.o.d"
  "/root/repo/src/schema/field.cc" "src/CMakeFiles/lb2.dir/schema/field.cc.o" "gcc" "src/CMakeFiles/lb2.dir/schema/field.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/lb2.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/lb2.dir/schema/schema.cc.o.d"
  "/root/repo/src/sql/sql.cc" "src/CMakeFiles/lb2.dir/sql/sql.cc.o" "gcc" "src/CMakeFiles/lb2.dir/sql/sql.cc.o.d"
  "/root/repo/src/stage/builder.cc" "src/CMakeFiles/lb2.dir/stage/builder.cc.o" "gcc" "src/CMakeFiles/lb2.dir/stage/builder.cc.o.d"
  "/root/repo/src/stage/ir.cc" "src/CMakeFiles/lb2.dir/stage/ir.cc.o" "gcc" "src/CMakeFiles/lb2.dir/stage/ir.cc.o.d"
  "/root/repo/src/stage/jit.cc" "src/CMakeFiles/lb2.dir/stage/jit.cc.o" "gcc" "src/CMakeFiles/lb2.dir/stage/jit.cc.o.d"
  "/root/repo/src/tpch/answers.cc" "src/CMakeFiles/lb2.dir/tpch/answers.cc.o" "gcc" "src/CMakeFiles/lb2.dir/tpch/answers.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "src/CMakeFiles/lb2.dir/tpch/dbgen.cc.o" "gcc" "src/CMakeFiles/lb2.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/lb2.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/lb2.dir/tpch/queries.cc.o.d"
  "/root/repo/src/tpch/text.cc" "src/CMakeFiles/lb2.dir/tpch/text.cc.o" "gcc" "src/CMakeFiles/lb2.dir/tpch/text.cc.o.d"
  "/root/repo/src/util/loc.cc" "src/CMakeFiles/lb2.dir/util/loc.cc.o" "gcc" "src/CMakeFiles/lb2.dir/util/loc.cc.o.d"
  "/root/repo/src/util/str.cc" "src/CMakeFiles/lb2.dir/util/str.cc.o" "gcc" "src/CMakeFiles/lb2.dir/util/str.cc.o.d"
  "/root/repo/src/volcano/volcano.cc" "src/CMakeFiles/lb2.dir/volcano/volcano.cc.o" "gcc" "src/CMakeFiles/lb2.dir/volcano/volcano.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
